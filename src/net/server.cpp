#include "net/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "loadable/parser.hpp"

namespace netpu::net {

using common::Error;
using common::ErrorCode;
using common::Status;

namespace {
constexpr int kLoopTickMs = 200;      // re-check stop flags at least this often
constexpr std::uint64_t kFlushBudgetMs = 1000;  // outbuf flush cap after drain
}  // namespace

NetServer::NetServer(serve::Server& server, NetServerOptions options)
    : server_(server),
      options_(std::move(options)),
      poller_(PollerOptions{options_.force_poll}) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.pending_cap == 0) options_.pending_cap = 1;
  if (options_.max_connections == 0) options_.max_connections = 1;
}

NetServer::~NetServer() { stop(); }

Status NetServer::start() {
  if (running_.load(std::memory_order_acquire)) {
    return Error{ErrorCode::kInvalidArgument, "NetServer already started"};
  }
  auto listener = listen_tcp(options_.host, options_.port, options_.backlog);
  if (!listener.ok()) return listener.error();
  auto pipe = make_wakeup_pipe();
  if (!pipe.ok()) return pipe.error();

  listener_ = std::move(listener.value().first);
  port_ = listener.value().second;
  wake_read_ = std::move(pipe.value().first);
  wake_write_ = std::move(pipe.value().second);

  if (auto s = poller_.add(listener_.get(), kPollRead); !s.ok()) return s;
  if (auto s = poller_.add(wake_read_.get(), kPollRead); !s.ok()) return s;

  stopping_.store(false, std::memory_order_release);
  flush_and_exit_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { event_loop(); });
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return Status::ok_status();
}

void NetServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  wake();

  // Phase 1: let the bridge drain — every decoded request reaches a
  // terminal response (or the timeout gives up on it).
  {
    std::unique_lock<std::mutex> lock(work_mutex_);
    (void)drain_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.drain_timeout_ms),
        [this] { return work_.empty() && inflight_ == 0; });
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  // Phase 2: flush buffered responses, then tear the loop down.
  flush_and_exit_.store(true, std::memory_order_release);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  running_.store(false, std::memory_order_release);
}

void NetServer::wake() {
  const std::uint8_t byte = 1;
  // EAGAIN means a wakeup is already pending — exactly what we want.
  (void)::write(wake_write_.get(), &byte, 1);
}

// --- bridge workers --------------------------------------------------------

void NetServer::worker_loop() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(work_mutex_);
      work_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !work_.empty();
      });
      if (work_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      item = std::move(work_.front());
      work_.pop_front();
      ++inflight_;
    }
    process(item);
    {
      std::lock_guard<std::mutex> lock(work_mutex_);
      --inflight_;
      if (work_.empty() && inflight_ == 0) drain_cv_.notify_all();
    }
  }
}

void NetServer::process(const WorkItem& item) {
  const RequestFrame& frame = item.frame;
  const auto fail = [&](WireStatus status, std::string message) {
    responses_error_.fetch_add(1, std::memory_order_relaxed);
    post_response(item.conn_id,
                  encode_error({frame.request_id, status, std::move(message)}));
  };

  auto& registry = server_.registry();
  auto setting = registry.input_setting(frame.model);
  if (!setting.ok()) {
    fail(WireStatus::kModelNotFound,
         "model '" + frame.model + "' is not registered");
    return;
  }
  auto image = loadable::parse_input(setting.value(), frame.input_stream);
  if (!image.ok()) {
    fail(WireStatus::kMalformedRequest,
         "input stream: " + image.error().to_string());
    return;
  }

  serve::RequestOptions request_options;
  request_options.deadline_us = frame.deadline_us;
  request_options.backend = to_run_backend(frame.backend);
  auto handle = server_.submit(frame.model, std::move(image).value(),
                               request_options);
  if (!handle.ok()) {
    fail(wire_status_from_error(handle.error()), handle.error().to_string());
    return;
  }
  auto result = handle.value().wait();
  if (!result.ok()) {
    fail(wire_status_from_error(result.error()), result.error().to_string());
    return;
  }

  const core::RunResult& run = result.value();
  ResponseFrame response;
  response.request_id = frame.request_id;
  response.predicted = static_cast<std::uint32_t>(run.predicted);
  response.cycles = run.cycles;
  response.output_values = run.output_values;
  response.probabilities = run.probabilities;
  responses_ok_.fetch_add(1, std::memory_order_relaxed);
  post_response(item.conn_id, encode_response(response));
}

void NetServer::post_response(std::uint64_t conn_id,
                              std::vector<std::uint8_t> bytes) {
  {
    std::lock_guard<std::mutex> lock(out_mutex_);
    outbound_.emplace_back(conn_id, std::move(bytes));
  }
  wake();
}

// --- event loop ------------------------------------------------------------

void NetServer::event_loop() {
  std::vector<Poller::Event> events;
  bool listener_closed = false;
  std::chrono::steady_clock::time_point flush_deadline{};

  for (;;) {
    if (stopping_.load(std::memory_order_acquire) && !listener_closed &&
        listener_.valid()) {
      poller_.remove(listener_.get());
      listener_.reset();
      listener_closed = true;
    }
    if (flush_and_exit_.load(std::memory_order_acquire)) {
      if (flush_deadline == std::chrono::steady_clock::time_point{}) {
        flush_deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(kFlushBudgetMs);
      }
      drain_outbound();
      bool pending_writes = false;
      for (const auto& [fd, conn] : conns_) {
        if (conn.out_off < conn.outbuf.size()) {
          pending_writes = true;
          break;
        }
      }
      if (!pending_writes || std::chrono::steady_clock::now() > flush_deadline) {
        break;
      }
    }

    if (auto s = poller_.wait(kLoopTickMs, events); !s.ok()) {
      break;  // poller failure is unrecoverable; drop all connections
    }
    for (const auto& event : events) {
      if (listener_.valid() && event.fd == listener_.get()) {
        accept_ready();
        continue;
      }
      if (event.fd == wake_read_.get()) {
        std::uint8_t scratch[256];
        while (::read(wake_read_.get(), scratch, sizeof(scratch)) > 0) {
        }
        drain_outbound();
        continue;
      }
      const auto it = conns_.find(event.fd);
      if (it == conns_.end()) continue;  // closed earlier this iteration
      if (event.closed) {
        close_conn(event.fd);
        continue;
      }
      if (event.readable) {
        read_ready(it->second);  // may close the connection; re-find below
      }
      if (event.writable) {
        const auto again = conns_.find(event.fd);
        if (again != conns_.end()) write_ready(again->second);
      }
    }
  }

  // Teardown: close whatever is left.
  std::vector<int> open_fds;
  // analyzer:allow hot-path -- teardown runs once per server lifetime
  open_fds.reserve(conns_.size());
  // analyzer:allow hot-path -- teardown runs once per server lifetime
  for (const auto& [fd, conn] : conns_) open_fds.push_back(fd);
  for (const int fd : open_fds) close_conn(fd);
  if (listener_.valid()) {
    poller_.remove(listener_.get());
    listener_.reset();
  }
}

void NetServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    Fd conn_fd(fd);
    if (stopping_.load(std::memory_order_acquire) ||
        conns_.size() >= options_.max_connections) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;  // conn_fd closes on scope exit
    }
    if (auto s = set_nonblocking(fd); !s.ok()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    set_nodelay(fd);
    if (auto s = poller_.add(fd, kPollRead); !s.ok()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Connection conn;
    conn.id = next_conn_id_++;
    conn.fd = std::move(conn_fd);
    conn_fd_by_id_[conn.id] = fd;
    conns_.emplace(fd, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.store(conns_.size(), std::memory_order_relaxed);
  }
}

void NetServer::read_ready(Connection& conn) {
  std::uint8_t buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd.get(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      if (auto s = conn.decoder.feed(
              std::span<const std::uint8_t>(buffer, static_cast<std::size_t>(n)));
          !s.ok()) {
        // Stream integrity is gone: count the cause, finish sending whatever
        // is already queued, and drop the connection. No error frame — the
        // peer is not speaking the protocol.
        const auto cause = conn.decoder.poison_cause().value_or(DecodeCause::kBadMagic);
        decode_rejects_[static_cast<std::size_t>(cause)].fetch_add(
            1, std::memory_order_relaxed);
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        conn.draining = true;
      }
      while (auto frame = conn.decoder.next()) {
        handle_frame(conn, *frame);
      }
      if (conn.draining) {
        // Close now if nothing is queued; otherwise write_ready closes the
        // connection once the remaining frames flush.
        if (conn.out_off >= conn.outbuf.size()) close_conn(conn.fd.get());
        return;
      }
      continue;
    }
    if (n == 0) {  // orderly EOF
      close_conn(conn.fd.get());
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_conn(conn.fd.get());
    return;
  }
}

void NetServer::handle_frame(Connection& conn, const RawFrame& raw) {
  frames_in_.fetch_add(1, std::memory_order_relaxed);
  if (raw.type != FrameType::kRequest) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    enqueue_bytes(conn, encode_error({0, WireStatus::kMalformedRequest,
                                      "server accepts request frames only"}));
    conn.draining = true;
    return;
  }
  auto request = decode_request(raw);
  if (!request.ok()) {
    // Framing is intact (the length prefix matched), so the connection can
    // survive a malformed body; only this request dies.
    decode_rejects_[static_cast<std::size_t>(DecodeCause::kBadBody)].fetch_add(
        1, std::memory_order_relaxed);
    enqueue_bytes(conn, encode_error({0, WireStatus::kMalformedRequest,
                                      request.error().to_string()}));
    return;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    responses_error_.fetch_add(1, std::memory_order_relaxed);
    enqueue_bytes(conn,
                  encode_error({request.value().request_id,
                                WireStatus::kShuttingDown, "server draining"}));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(work_mutex_);
    if (work_.size() >= options_.pending_cap) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      enqueue_bytes(conn, encode_error({request.value().request_id,
                                        WireStatus::kShedLoad,
                                        "server in-flight bound reached"}));
      return;
    }
    work_.push_back(WorkItem{conn.id, std::move(request).value()});
  }
  work_cv_.notify_one();
}

void NetServer::enqueue_bytes(Connection& conn, std::vector<std::uint8_t> bytes) {
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  // Compact the consumed prefix before growing the buffer.
  if (conn.out_off > 0) {
    conn.outbuf.erase(conn.outbuf.begin(),
                      conn.outbuf.begin() + static_cast<std::ptrdiff_t>(conn.out_off));
    conn.out_off = 0;
  }
  conn.outbuf.insert(conn.outbuf.end(), bytes.begin(), bytes.end());
  // No eager write here: flushing can close the connection, and callers
  // still hold a reference. Arm write interest; the (level-triggered) loop
  // flushes on the next wait, which returns immediately for a writable fd.
  if ((conn.events & kPollWrite) == 0) {
    conn.events = kPollRead | kPollWrite;
    (void)poller_.modify(conn.fd.get(), conn.events);
  }
}

void NetServer::write_ready(Connection& conn) {
  while (conn.out_off < conn.outbuf.size()) {
    const ssize_t n =
        ::send(conn.fd.get(), conn.outbuf.data() + conn.out_off,
               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(conn.fd.get());
    return;
  }
  const bool flushed = conn.out_off >= conn.outbuf.size();
  if (flushed) {
    conn.outbuf.clear();
    conn.out_off = 0;
  }
  const std::uint32_t wanted = flushed ? kPollRead : (kPollRead | kPollWrite);
  if (wanted != conn.events) {
    conn.events = wanted;
    (void)poller_.modify(conn.fd.get(), wanted);
  }
  if (flushed && conn.draining) close_conn(conn.fd.get());
}

void NetServer::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  poller_.remove(fd);
  conn_fd_by_id_.erase(it->second.id);
  conns_.erase(it);
  closed_.fetch_add(1, std::memory_order_relaxed);
  active_.store(conns_.size(), std::memory_order_relaxed);
}

void NetServer::drain_outbound() {
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> batch;
  {
    std::lock_guard<std::mutex> lock(out_mutex_);
    batch.swap(outbound_);
  }
  for (auto& [conn_id, bytes] : batch) {
    const auto it = conn_fd_by_id_.find(conn_id);
    if (it == conn_fd_by_id_.end()) continue;  // connection died meanwhile
    const auto conn_it = conns_.find(it->second);
    if (conn_it == conns_.end()) continue;
    enqueue_bytes(conn_it->second, std::move(bytes));
  }
}

// --- metrics ---------------------------------------------------------------

NetServerCounters NetServer::counters() const {
  NetServerCounters out;
  out.connections_accepted = accepted_.load(std::memory_order_relaxed);
  out.connections_rejected = rejected_.load(std::memory_order_relaxed);
  out.connections_closed = closed_.load(std::memory_order_relaxed);
  out.connections_active = active_.load(std::memory_order_relaxed);
  out.frames_in = frames_in_.load(std::memory_order_relaxed);
  out.frames_out = frames_out_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  out.responses_ok = responses_ok_.load(std::memory_order_relaxed);
  out.responses_error = responses_error_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kDecodeCauseCount; ++i) {
    out.decode_rejects[i] = decode_rejects_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void NetServer::export_metrics(obs::MetricsExporter& exporter) const {
  const auto c = counters();
  const auto event = [&](const char* name, std::uint64_t value) {
    exporter.counter("netpu_net_connections_total",
                     "TCP connections by lifecycle event",
                     static_cast<double>(value), {{"event", name}});
  };
  event("accepted", c.connections_accepted);
  event("rejected", c.connections_rejected);
  event("closed", c.connections_closed);
  exporter.gauge("netpu_net_connections_active", "Open TCP connections",
                 static_cast<double>(c.connections_active));
  exporter.counter("netpu_net_frames_total", "Protocol frames by direction",
                   static_cast<double>(c.frames_in), {{"direction", "in"}});
  exporter.counter("netpu_net_frames_total", "Protocol frames by direction",
                   static_cast<double>(c.frames_out), {{"direction", "out"}});
  for (std::size_t i = 0; i < kDecodeCauseCount; ++i) {
    exporter.counter("netpu_net_decode_rejects_total",
                     "Rejected wire bytes/frames by decode failure cause",
                     static_cast<double>(c.decode_rejects[i]),
                     {{"cause", to_string(static_cast<DecodeCause>(i))}});
  }
  exporter.counter("netpu_net_shed_requests_total",
                   "Requests shed at the network in-flight bound",
                   static_cast<double>(c.shed));
  exporter.counter("netpu_net_protocol_errors_total",
                   "Connections that violated the framing protocol",
                   static_cast<double>(c.protocol_errors));
  exporter.counter("netpu_net_responses_total", "Responses by outcome",
                   static_cast<double>(c.responses_ok), {{"outcome", "ok"}});
  exporter.counter("netpu_net_responses_total", "Responses by outcome",
                   static_cast<double>(c.responses_error), {{"outcome", "error"}});
}

std::string NetServer::prometheus_text() const {
  obs::MetricsExporter exporter;
  export_metrics(exporter);
  return server_.prometheus_text() + exporter.render();
}

}  // namespace netpu::net
