#include "net/client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace netpu::net {

using common::Error;
using common::ErrorCode;
using common::Result;
using common::Status;

namespace {

Error transport_error(const std::string& what) {
  return Error{ErrorCode::kTransportError, what};
}

// Write the whole buffer to a blocking socket.
Status write_all(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return transport_error(std::string("send: ") + std::strerror(errno));
  }
  return Status::ok_status();
}

}  // namespace

// One connection generation. The reader thread holds a shared_ptr and works
// exclusively on this state, never on the Client — so teardown can never
// deadlock between the reader and a submitter, and a stale reader can never
// corrupt a newer connection.
struct Client::ConnState {
  Fd socket;
  std::mutex mutex;  // guards alive, pending
  bool alive = true;
  std::map<std::uint64_t, std::promise<Result<RemoteResult>>> pending;
  std::mutex write_mutex;  // guards socket writes (frame interleaving)

  // Fail every outstanding request and mark the generation dead. Returns
  // false if it was already dead (teardown raced).
  bool kill(const std::string& reason) {
    std::map<std::uint64_t, std::promise<Result<RemoteResult>>> orphans;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (!alive) return false;
      alive = false;
      orphans.swap(pending);
    }
    // Unblock a reader stuck in recv(); the fd itself closes with the
    // shared state.
    if (socket.valid()) ::shutdown(socket.get(), SHUT_RDWR);
    for (auto& [id, promise] : orphans) {
      promise.set_value(transport_error("connection lost: " + reason));
    }
    return true;
  }
};

Client::Client(ClientOptions options) : options_(std::move(options)) {}

Client::~Client() {
  std::shared_ptr<ConnState> conn;
  std::thread reader;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    conn = std::move(conn_);
    reader = std::move(reader_);
  }
  if (conn != nullptr) (void)conn->kill("client destroyed");
  if (reader.joinable()) reader.join();
}

Result<std::unique_ptr<Client>> Client::connect(const ClientOptions& options) {
  std::unique_ptr<Client> client(new Client(options));
  std::lock_guard<std::mutex> lock(client->state_mutex_);
  if (auto s = client->connect_locked(); !s.ok()) return s.error();
  return client;
}

Status Client::connect_locked() {
  auto socket = connect_tcp(options_.host, options_.port, options_.connect_timeout_ms);
  if (!socket.ok()) return socket.error();

  if (reader_.joinable()) reader_.join();  // reaps the previous generation
  auto conn = std::make_shared<ConnState>();
  conn->socket = std::move(socket).value();
  conn_ = conn;
  connects_.fetch_add(1, std::memory_order_relaxed);
  reader_ = std::thread([this, conn] { reader_loop(conn); });
  return Status::ok_status();
}

Status Client::reconnect_with_backoff_locked() {
  auto last = Status(transport_error("not connected (reconnection disabled)"));
  std::uint64_t backoff_ms = options_.backoff_initial_ms;
  for (std::size_t attempt = 1; attempt <= options_.max_reconnect_attempts;
       ++attempt) {
    last = connect_locked();
    if (last.ok()) return last;
    if (attempt < options_.max_reconnect_attempts) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, options_.backoff_max_ms);
    }
  }
  return last;
}

void Client::reader_loop(std::shared_ptr<ConnState> conn) {
  FrameDecoder decoder;
  std::uint8_t buffer[64 * 1024];
  const int fd = conn->socket.get();
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      (void)conn->kill(n == 0 ? "server closed the connection"
                              : std::string("recv: ") + std::strerror(errno));
      return;
    }
    if (auto s = decoder.feed(
            std::span<const std::uint8_t>(buffer, static_cast<std::size_t>(n)));
        !s.ok()) {
      (void)conn->kill("undecodable bytes from server: " + s.error().to_string());
      return;
    }
    while (auto raw = decoder.next()) {
      std::optional<std::promise<Result<RemoteResult>>> promise;
      Result<RemoteResult> outcome = transport_error("unset");
      if (raw->type == FrameType::kResponse) {
        auto response = decode_response(*raw);
        if (!response.ok()) {
          (void)conn->kill("bad response body: " + response.error().to_string());
          return;
        }
        RemoteResult result;
        result.predicted = response.value().predicted;
        result.cycles = response.value().cycles;
        result.output_values = std::move(response.value().output_values);
        result.probabilities = std::move(response.value().probabilities);
        outcome = std::move(result);
        std::lock_guard<std::mutex> lock(conn->mutex);
        const auto it = conn->pending.find(response.value().request_id);
        if (it != conn->pending.end()) {
          promise = std::move(it->second);
          conn->pending.erase(it);
        }
      } else if (raw->type == FrameType::kError) {
        auto error = decode_error(*raw);
        if (!error.ok()) {
          (void)conn->kill("bad error body: " + error.error().to_string());
          return;
        }
        // Keep the wire status name in the message so callers (and tests)
        // can tell queue_full from shed_load, which share an ErrorCode.
        outcome = Error{error_code_from_wire(error.value().status),
                        std::string("[") + to_string(error.value().status) +
                            "] " + error.value().message};
        std::lock_guard<std::mutex> lock(conn->mutex);
        const auto it = conn->pending.find(error.value().request_id);
        if (it != conn->pending.end()) {
          promise = std::move(it->second);
          conn->pending.erase(it);
        }
      } else {
        (void)conn->kill("server sent a request frame");
        return;
      }
      // Unmatched ids are tolerated: a request that already failed locally
      // may still get a late response after reconnect.
      if (promise.has_value()) promise->set_value(std::move(outcome));
    }
  }
}

std::future<Result<RemoteResult>> Client::submit(const std::string& model,
                                                 std::vector<Word> input_stream,
                                                 const SubmitOptions& options) {
  std::promise<Result<RemoteResult>> promise;
  auto future = promise.get_future();

  // Snapshot (or revive) the current connection generation.
  std::shared_ptr<ConnState> conn;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    conn = conn_;
    bool alive = false;
    if (conn != nullptr) {
      std::lock_guard<std::mutex> conn_lock(conn->mutex);
      alive = conn->alive;
    }
    if (!alive) {
      if (auto s = reconnect_with_backoff_locked(); !s.ok()) {
        promise.set_value(s.error());
        return future;
      }
      conn = conn_;
    }
  }

  RequestFrame frame;
  frame.request_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  frame.deadline_us = options.deadline_us;
  frame.backend = to_wire_backend(options.backend);
  frame.model = model;
  frame.input_stream = std::move(input_stream);
  const auto bytes = encode_request(frame);

  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (!conn->alive) {
      promise.set_value(transport_error("connection lost before send"));
      return future;
    }
    conn->pending.emplace(frame.request_id, std::move(promise));
  }
  Status written = Status::ok_status();
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    written = write_all(conn->socket.get(), bytes);
  }
  if (!written.ok()) {
    // kill() fails every pending request on this generation, including the
    // one just registered — the future resolves with kTransportError.
    (void)conn->kill(written.error().message);
  }
  return future;
}

Result<RemoteResult> Client::infer(const std::string& model,
                                   std::vector<Word> input_stream,
                                   const SubmitOptions& options) {
  return submit(model, std::move(input_stream), options).get();
}

bool Client::connected() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (conn_ == nullptr) return false;
  std::lock_guard<std::mutex> conn_lock(conn_->mutex);
  return conn_->alive;
}

std::size_t Client::outstanding() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (conn_ == nullptr) return 0;
  std::lock_guard<std::mutex> conn_lock(conn_->mutex);
  return conn_->pending.size();
}

// --- pool ------------------------------------------------------------------

Result<std::unique_ptr<ClientPool>> ClientPool::connect(
    const ClientPoolOptions& options) {
  const std::size_t n = options.connections == 0 ? 1 : options.connections;
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto client = Client::connect(options.client);
    if (!client.ok()) return client.error();
    clients.push_back(std::move(client).value());
  }
  return std::unique_ptr<ClientPool>(new ClientPool(std::move(clients)));
}

std::future<Result<RemoteResult>> ClientPool::submit(
    const std::string& model, std::vector<Word> input_stream,
    const SubmitOptions& options) {
  const auto i = cursor_.fetch_add(1, std::memory_order_relaxed) % clients_.size();
  return clients_[i]->submit(model, std::move(input_stream), options);
}

Result<RemoteResult> ClientPool::infer(const std::string& model,
                                       std::vector<Word> input_stream,
                                       const SubmitOptions& options) {
  return submit(model, std::move(input_stream), options).get();
}

std::uint64_t ClientPool::connects() const {
  std::uint64_t total = 0;
  for (const auto& client : clients_) total += client->connects();
  return total;
}

}  // namespace netpu::net
