// Network front door, stage 3: the C++ client library.
//
// net::Client is one pipelined connection: submit() assigns a request id,
// registers a pending slot, writes the frame (caller thread, serialized by
// a write mutex) and returns a future. A dedicated reader thread reassembles
// response/error frames and completes pending slots by id — multiple
// requests can be outstanding on one connection, and responses may return
// in any order.
//
// Failure semantics are explicit: when the connection dies (EOF, write
// error, undecodable bytes), every outstanding request fails with
// ErrorCode::kTransportError and the client flips to disconnected. The next
// submit() runs reconnect-with-backoff (exponential, capped, bounded
// attempts) before accepting work again, so a restarted server picks the
// retried requests up transparently.
//
// net::ClientPool stripes submits over N independent connections
// round-robin — the multi-connection analogue of the engine's context pool.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "core/run_types.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace netpu::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t connect_timeout_ms = 2000;
  // Reconnect-with-backoff schedule: attempts beyond the first wait
  // backoff_initial_ms, doubling up to backoff_max_ms. 0 attempts disables
  // reconnection (a dead connection stays dead).
  std::size_t max_reconnect_attempts = 5;
  std::uint64_t backoff_initial_ms = 10;
  std::uint64_t backoff_max_ms = 500;
};

// What a remote inference returns (the RunResult surface that crosses the
// wire).
struct RemoteResult {
  std::size_t predicted = 0;
  Cycle cycles = 0;
  std::vector<std::int64_t> output_values;
  std::vector<std::int32_t> probabilities;
};

struct SubmitOptions {
  std::uint64_t deadline_us = 0;  // relative budget, stamped server-side
  std::optional<core::Backend> backend;  // nullopt = server default
};

class Client {
 public:
  // Connect eagerly so configuration errors surface at construction.
  [[nodiscard]] static common::Result<std::unique_ptr<Client>> connect(
      const ClientOptions& options);

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Pipeline one request; thread-safe. The future resolves with the remote
  // result, a typed protocol error (mapped back to common::ErrorCode), or
  // kTransportError if the connection dies first. A disconnected client
  // attempts reconnect-with-backoff inline before giving up.
  [[nodiscard]] std::future<common::Result<RemoteResult>> submit(
      const std::string& model, std::vector<Word> input_stream,
      const SubmitOptions& options = {});

  // Synchronous convenience wrapper.
  [[nodiscard]] common::Result<RemoteResult> infer(
      const std::string& model, std::vector<Word> input_stream,
      const SubmitOptions& options = {});

  [[nodiscard]] bool connected() const;
  // Cumulative successful (re)connects; 1 after the initial connect.
  [[nodiscard]] std::uint64_t connects() const {
    return connects_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t outstanding() const;

 private:
  // One connection generation: socket, pending map and liveness flag shared
  // between submitters and the reader thread. Defined in client.cpp.
  struct ConnState;

  explicit Client(ClientOptions options);

  // Requires state_mutex_ held. (Re)establishes the socket and reader.
  [[nodiscard]] common::Status connect_locked();
  // Requires state_mutex_ held. connect_locked with the backoff schedule.
  [[nodiscard]] common::Status reconnect_with_backoff_locked();

  void reader_loop(std::shared_ptr<ConnState> conn);

  ClientOptions options_;

  mutable std::mutex state_mutex_;  // guards conn_, reader_
  std::shared_ptr<ConnState> conn_;
  std::thread reader_;

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> connects_{0};
};

struct ClientPoolOptions {
  ClientOptions client;
  std::size_t connections = 4;
};

// Round-robin stripe over independent pipelined connections.
class ClientPool {
 public:
  [[nodiscard]] static common::Result<std::unique_ptr<ClientPool>> connect(
      const ClientPoolOptions& options);

  [[nodiscard]] std::future<common::Result<RemoteResult>> submit(
      const std::string& model, std::vector<Word> input_stream,
      const SubmitOptions& options = {});
  [[nodiscard]] common::Result<RemoteResult> infer(
      const std::string& model, std::vector<Word> input_stream,
      const SubmitOptions& options = {});

  [[nodiscard]] std::size_t size() const { return clients_.size(); }
  [[nodiscard]] Client& client(std::size_t i) { return *clients_[i]; }
  // Total successful (re)connects across the pool.
  [[nodiscard]] std::uint64_t connects() const;

 private:
  explicit ClientPool(std::vector<std::unique_ptr<Client>> clients)
      : clients_(std::move(clients)) {}

  std::vector<std::unique_ptr<Client>> clients_;
  std::atomic<std::uint64_t> cursor_{0};
};

}  // namespace netpu::net
