// Network front door, stage 2: the TCP server.
//
// One event-loop thread owns every socket: it accepts connections, reads
// bytes into per-connection FrameDecoders, and flushes per-connection write
// buffers — non-blocking fds on a Poller (epoll on Linux, poll fallback).
// Decoded request frames hop to a small pool of bridge workers that drive
// the in-process serving facade (serve::Server::submit + handle.wait());
// finished responses hop back to the event loop through an outbound queue
// plus a self-pipe wakeup, so the loop never blocks and a slow client never
// stalls another connection.
//
// Admission is bounded twice: the bridge work queue (pending_cap) sheds
// excess frames with kShedLoad *before* they cost any decode/submit work,
// and serve::RequestQueue's own capacity surfaces as kQueueFull — the
// protocol's two distinguishable backpressure signals.
//
// stop() drains gracefully: the listener closes, in-flight requests finish,
// responses flush, then connections close. Per-connection and protocol
// counters export through obs::MetricsExporter (see export_metrics).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics_exporter.hpp"
#include "serve/server.hpp"

namespace netpu::net {

struct NetServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = pick an ephemeral port (see port())
  int backlog = 64;
  std::size_t max_connections = 64;
  // Bound on requests decoded but not yet terminal. Above it the server
  // sheds with kShedLoad instead of queueing unboundedly.
  std::size_t pending_cap = 256;
  // Bridge threads between the event loop and serve::Server. Each worker
  // carries one in-flight request through submit + wait, so this bounds
  // RPC concurrency into the serving stack.
  std::size_t workers = 4;
  bool force_poll = false;  // exercise the poll(2) backend even on Linux
  std::uint64_t drain_timeout_ms = 5000;
};

// Monotonic counter snapshot (see export_metrics for the Prometheus names).
struct NetServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // at max_connections
  std::uint64_t connections_closed = 0;
  std::uint64_t connections_active = 0;  // gauge
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t shed = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_error = 0;
  std::uint64_t decode_rejects[kDecodeCauseCount] = {};
};

class NetServer {
 public:
  // The serve::Server must outlive this object and be start()ed by the
  // owner (the daemon owns both lifecycles).
  NetServer(serve::Server& server, NetServerOptions options = {});
  ~NetServer();  // stop()

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Bind, listen and launch the event loop + bridge workers. Fails (and
  // leaves the object inert) if the address cannot be bound.
  [[nodiscard]] common::Status start();
  // Graceful drain; idempotent. Safe to call from any thread except the
  // event loop itself.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }
  // The actual bound port (resolves an ephemeral request). Valid after a
  // successful start().
  [[nodiscard]] std::uint16_t port() const { return port_; }

  [[nodiscard]] NetServerCounters counters() const;
  // Register the netpu_net_* families onto an exporter.
  void export_metrics(obs::MetricsExporter& exporter) const;
  // The serving facade's full Prometheus snapshot plus the netpu_net_*
  // families, one exposition document.
  [[nodiscard]] std::string prometheus_text() const;

 private:
  struct Connection {
    std::uint64_t id = 0;
    Fd fd;
    FrameDecoder decoder;
    std::vector<std::uint8_t> outbuf;
    std::size_t out_off = 0;
    std::uint32_t events = kPollRead;
    bool draining = false;  // close once outbuf flushes
  };

  struct WorkItem {
    std::uint64_t conn_id = 0;
    RequestFrame frame;
  };

  void event_loop();
  void worker_loop();
  void process(const WorkItem& item);

  // Event-loop-thread-only helpers.
  void accept_ready();
  void read_ready(Connection& conn);
  void handle_frame(Connection& conn, const RawFrame& raw);
  void write_ready(Connection& conn);
  void enqueue_bytes(Connection& conn, std::vector<std::uint8_t> bytes);
  void close_conn(int fd);
  void drain_outbound();

  // Any-thread helpers.
  void post_response(std::uint64_t conn_id, std::vector<std::uint8_t> bytes);
  void wake();

  serve::Server& server_;
  NetServerOptions options_;
  std::uint16_t port_ = 0;

  Fd listener_;
  Fd wake_read_;
  Fd wake_write_;
  Poller poller_;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};     // drain requested
  std::atomic<bool> flush_and_exit_{false};  // leave loop once outbufs empty

  // Event-loop-thread-only state (no lock needed).
  std::map<int, Connection> conns_;           // by fd
  std::map<std::uint64_t, int> conn_fd_by_id_;
  std::uint64_t next_conn_id_ = 1;

  std::mutex work_mutex_;  // guards work_, inflight_
  std::condition_variable work_cv_;
  std::condition_variable drain_cv_;
  std::deque<WorkItem> work_;
  std::size_t inflight_ = 0;

  std::mutex out_mutex_;  // guards outbound_
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> outbound_;

  // Counters (relaxed atomics: monotonic telemetry, no ordering needed).
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> responses_ok_{0};
  std::atomic<std::uint64_t> responses_error_{0};
  std::atomic<std::uint64_t> decode_rejects_[kDecodeCauseCount] = {};
};

}  // namespace netpu::net
