// DMA / Processing-System overhead model.
//
// The paper's measured latencies (Table VI) exceed its simulated latencies
// (Table V) by a nearly constant ~5.9 us across all six models — the cost of
// the AXI DMA descriptor setup and PS-side control on the Zynq UltraScale+.
// We model that as a fixed per-inference overhead plus a (negligible at
// these sizes) per-word streaming term for loadables larger than the DMA
// burst pipeline hides.
#pragma once

#include <cstdint>

namespace netpu::runtime {

struct DmaModel {
  double setup_overhead_us = 5.9;   // descriptor setup + PS control + IRQ
  double extra_us_per_kword = 0.0;  // beyond the accelerator's own streaming

  [[nodiscard]] double transfer_overhead_us(std::uint64_t stream_words) const {
    return setup_overhead_us +
           extra_us_per_kword * static_cast<double>(stream_words) / 1024.0;
  }
};

}  // namespace netpu::runtime
