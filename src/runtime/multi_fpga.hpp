// Multiple-FPGA pipelined inference (Sec. I-B application scenario).
//
// K NetPU-M instances are chained: each owns a contiguous slice of the
// network's layers and forwards its output codes to the next board. Because
// each stage re-streams only its own slice's weights, stages run
// concurrently across *different* images — throughput is set by the slowest
// stage while single-image latency gains the inter-board transfer overhead.
//
// Functionality uses the golden layer evaluation (each stage computes its
// slice exactly as one NetPU-M would); timing uses the per-stage latency
// model plus per-hop DMA overhead.
#pragma once

#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/latency_model.hpp"
#include "nn/quantized_mlp.hpp"
#include "runtime/dma.hpp"

namespace netpu::runtime {

struct PipelineStage {
  std::size_t first_layer = 0;  // inclusive
  std::size_t last_layer = 0;   // inclusive
  double stage_us = 0.0;
};

class MultiFpgaPipeline {
 public:
  // Partition `mlp` across `boards` instances of `config`, balancing the
  // estimated per-stage latency greedily.
  MultiFpgaPipeline(nn::QuantizedMlp mlp, const core::NetpuConfig& config,
                    int boards, DmaModel dma = {});

  [[nodiscard]] const std::vector<PipelineStage>& stages() const { return stages_; }

  // Latency of one image through all stages (including per-hop transfers).
  [[nodiscard]] double single_image_latency_us() const;

  // Steady-state throughput: the slowest stage paces the pipeline.
  [[nodiscard]] double throughput_images_per_s() const;

  // Exact (golden) classification through the staged layers.
  [[nodiscard]] std::size_t classify(std::span<const std::uint8_t> image) const;

 private:
  nn::QuantizedMlp mlp_;
  core::NetpuConfig config_;
  DmaModel dma_;
  std::vector<PipelineStage> stages_;
};

}  // namespace netpu::runtime
