// Multiple-FPGA pipelined inference (Sec. I-B application scenario).
//
// K NetPU-M instances are chained: each owns a contiguous slice of the
// network's layers and forwards its output codes to the next board. Because
// each stage re-streams only its own slice's weights, stages run
// concurrently across *different* images — throughput is set by the slowest
// stage while single-image latency gains the inter-board transfer overhead.
//
// This class is a compatibility wrapper over runtime::Partitioner's
// layer-pipeline plan (the partition algorithm lives there now, shared with
// engine::Session's --devices path). Functionality stages the image through
// the bit-true core::FastExecutor kernels slice by slice — exactly what
// each board computes — instead of the earlier golden shortcut, which fed
// the raw image to the weighted-layer evaluator and so skipped the input
// layer's ACTIV/QUAN; timing uses the per-stage latency model plus per-hop
// DMA overhead.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/fast_executor.hpp"
#include "nn/quantized_mlp.hpp"
#include "runtime/dma.hpp"
#include "runtime/execution_plan.hpp"

namespace netpu::runtime {

struct PipelineStage {
  std::size_t first_layer = 0;  // inclusive
  std::size_t last_layer = 0;   // inclusive
  double stage_us = 0.0;
};

class MultiFpgaPipeline {
 public:
  // Partition `mlp` across `boards` instances of `config`, balancing the
  // estimated per-stage latency greedily.
  MultiFpgaPipeline(nn::QuantizedMlp mlp, const core::NetpuConfig& config,
                    int boards, DmaModel dma = {});

  [[nodiscard]] const std::vector<PipelineStage>& stages() const { return stages_; }
  [[nodiscard]] const ExecutionPlan& plan() const { return plan_; }

  // Latency of one image through all stages (including per-hop transfers).
  [[nodiscard]] double single_image_latency_us() const;

  // Steady-state throughput: the slowest stage paces the pipeline.
  [[nodiscard]] double throughput_images_per_s() const;

  // Bit-true classification through the staged layers.
  [[nodiscard]] std::size_t classify(std::span<const std::uint8_t> image) const;

 private:
  nn::QuantizedMlp mlp_;
  core::NetpuConfig config_;
  DmaModel dma_;
  ExecutionPlan plan_;
  std::vector<PipelineStage> stages_;
  // Bit-true stage kernels; null when the model exceeds the instance's
  // capabilities (MT cap, dense support), in which case classify falls back
  // to the golden model evaluation.
  std::unique_ptr<core::FastExecutor> fast_;
};

}  // namespace netpu::runtime
