// Host-side driver: what the MCU/PS runs. Because the loadable pre-packages
// settings, inputs, parameters and weights in the exact consumption order
// (Sec. III-B3), the driver is little more than "DMA the buffer, wait for
// the result" — the paper's headline runtime simplification.
#pragma once

#include <span>
#include <vector>

#include "core/accelerator.hpp"
#include "runtime/dma.hpp"

namespace netpu::runtime {

struct MeasuredInference {
  std::size_t predicted = 0;
  double simulated_us = 0.0;  // accelerator-only latency (Table V analogue)
  double measured_us = 0.0;   // including DMA/PS overhead (Table VI analogue)
  netpu::Cycle cycles = 0;
};

struct BatchResult {
  std::size_t correct = 0;
  std::size_t total = 0;
  double mean_measured_us = 0.0;

  [[nodiscard]] double accuracy() const {
    return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
  }
};

class Driver {
 public:
  Driver(core::Accelerator& accelerator, DmaModel dma = {})
      : accelerator_(accelerator), dma_(dma) {}

  // One inference: compile, stream, simulate, add transfer overhead.
  [[nodiscard]] common::Result<MeasuredInference> infer(
      const nn::QuantizedMlp& mlp, std::span<const std::uint8_t> image,
      core::RunMode mode = core::RunMode::kCycleAccurate);

  // Batch of images: the accelerator holds no weights across inferences, so
  // every image re-streams the full loadable (the honest cost of the
  // overlay; FINN-style HSD instances keep weights on chip instead).
  // `timed_samples` caps how many images run cycle-accurately; the rest run
  // functionally and reuse the measured mean latency.
  [[nodiscard]] common::Result<BatchResult> infer_batch(
      const nn::QuantizedMlp& mlp,
      std::span<const std::vector<std::uint8_t>> images, std::span<const int> labels,
      std::size_t timed_samples = 1);

 private:
  core::Accelerator& accelerator_;
  DmaModel dma_;
};

}  // namespace netpu::runtime
