#include "runtime/execution_plan.hpp"

#include <algorithm>
#include <sstream>

#include "core/latency_model.hpp"
#include "loadable/compiler.hpp"
#include "loadable/layer_setting.hpp"

namespace netpu::runtime {
namespace {

using common::Error;
using common::ErrorCode;
using common::Result;

// Latency-model estimate of one layer slice in isolation. Only the
// geometry fields feed the estimate, so a shallow copy with an adjusted
// neuron/fan-in window prices a shard without materializing its weights.
double slice_us(const nn::QuantizedLayer& layer, const core::NetpuConfig& config,
                int neurons, int input_length) {
  nn::QuantizedMlp one;
  one.layers.push_back(layer);
  one.layers.back().neurons = neurons;
  one.layers.back().input_length = input_length;
  const auto b = core::estimate_latency(one, config);
  return config.cycles_to_us(b.total());
}

double layer_us(const nn::QuantizedLayer& layer, const core::NetpuConfig& config) {
  return slice_us(layer, config, layer.neurons, layer.input_length);
}

// Capacity probe of a layer slice: the full layer's setting with the
// shard's geometry substituted.
common::Status slice_fits(const nn::QuantizedLayer& layer,
                          const loadable::CompileOptions& options, int neurons,
                          int input_length) {
  auto s = loadable::LayerSetting::from_layer(layer);
  s.neurons = static_cast<std::uint32_t>(neurons);
  s.input_length = static_cast<std::uint32_t>(input_length);
  return loadable::check_layer_capacity(s, options);
}

Result<PlanStep> shard_layer(const nn::QuantizedMlp& mlp, std::size_t index,
                             const core::NetpuConfig& config,
                             const loadable::CompileOptions& options,
                             std::size_t devices) {
  const auto& layer = mlp.layers[index];
  const auto s = loadable::LayerSetting::from_layer(layer);
  const auto fail = [&](const std::string& what) -> Error {
    std::ostringstream os;
    os << "layer " << index << ": " << what;
    return Error{ErrorCode::kCapacityExceeded, os.str()};
  };
  if (index == 0) {
    return fail(
        "the input layer exceeds one device's capacity and cannot be sharded");
  }

  // Which dimension overflows decides the shard axis. Fan-in overflow
  // (input/weight buffers, max input length) splits the input window;
  // neuron overflow (neuron cap, parameter FIFOs) splits the neuron range.
  const bool need_fan_in = s.input_length > options.max_input_length ||
                           s.input_words() > options.input_buffer_words ||
                           s.chunks_per_neuron() > options.weight_buffer_words;
  // Probe the neuron-dimension constraints (neuron cap, parameter FIFOs)
  // with the fan-in collapsed to one value, so the two axes separate.
  const bool need_neurons = !slice_fits(layer, options, layer.neurons, 1).ok();

  PlanStep step;
  step.first_layer = index;
  step.last_layer = index;
  step.sharded = true;

  if (need_fan_in && need_neurons) {
    return fail(
        "exceeds one device's capacity along both the neuron and fan-in "
        "dimensions; no supported shard assignment fits");
  }

  if (need_fan_in) {
    step.dim = ShardDim::kFanIn;
    const int vpc = s.values_per_chunk();
    const auto total_chunks = static_cast<int>(s.chunks_per_neuron());
    // Largest chunk-aligned window one device can hold.
    const std::int64_t by_len = options.max_input_length;
    const std::int64_t by_input = static_cast<std::int64_t>(options.input_buffer_words) *
                                  s.values_per_input_word();
    const std::int64_t by_weights =
        static_cast<std::int64_t>(options.weight_buffer_words) * vpc;
    const std::int64_t max_window =
        (std::min({by_len, by_input, by_weights}) / vpc) * vpc;
    if (max_window < vpc) {
      return fail("one MAC chunk exceeds a device's buffers; no fan-in shard fits");
    }
    const int max_chunks = static_cast<int>(max_window / vpc);
    const int parts = (total_chunks + max_chunks - 1) / max_chunks;
    if (static_cast<std::size_t>(parts) > devices) {
      std::ostringstream os;
      os << "fan-in sharding needs " << parts << " devices, only " << devices
         << " available";
      return fail(os.str());
    }
    const int base_chunks = (total_chunks + parts - 1) / parts;
    for (int p = 0; p < parts; ++p) {
      ShardPart part;
      part.device = static_cast<std::size_t>(p);
      part.neuron_begin = 0;
      part.neuron_count = layer.neurons;
      part.input_begin = p * base_chunks * vpc;
      part.input_length = std::min(layer.input_length - part.input_begin,
                                   base_chunks * vpc);
      part.carries_bias = p == 0;
      if (auto ok = slice_fits(layer, options, part.neuron_count, part.input_length);
          !ok.ok()) {
        return fail("fan-in shard still exceeds capacity: " + ok.error().message);
      }
      part.estimated_us = slice_us(layer, config, part.neuron_count, part.input_length);
      step.estimated_us = std::max(step.estimated_us, part.estimated_us);
      step.parts.push_back(part);
    }
    return step;
  }

  step.dim = ShardDim::kNeurons;
  // Largest fitting neuron window (capacity is monotone in the count).
  int lo = 1, hi = layer.neurons, best = 0;
  while (lo <= hi) {
    const int mid = lo + (hi - lo) / 2;
    if (slice_fits(layer, options, mid, layer.input_length).ok()) {
      best = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  if (best == 0) {
    return fail("a single neuron exceeds a device's buffers; no neuron shard fits");
  }
  const int parts = (layer.neurons + best - 1) / best;
  if (static_cast<std::size_t>(parts) > devices) {
    std::ostringstream os;
    os << "neuron sharding needs " << parts << " devices, only " << devices
       << " available";
    return fail(os.str());
  }
  const int base = (layer.neurons + parts - 1) / parts;
  for (int p = 0; p < parts; ++p) {
    ShardPart part;
    part.device = static_cast<std::size_t>(p);
    part.neuron_begin = p * base;
    part.neuron_count = std::min(layer.neurons - part.neuron_begin, base);
    part.input_begin = 0;
    part.input_length = layer.input_length;
    part.carries_bias = true;  // full fan-in: each shard owns its neurons' bias
    part.estimated_us = slice_us(layer, config, part.neuron_count, part.input_length);
    step.estimated_us = std::max(step.estimated_us, part.estimated_us);
    step.parts.push_back(part);
  }
  return step;
}

}  // namespace

double ExecutionPlan::single_image_latency_us(const DmaModel& dma) const {
  double us = 0.0;
  for (const auto& step : steps_) {
    us += step.estimated_us;
    // One stream-setup hop per device touched by the step (sharded steps
    // scatter to every part and gather the partial sums back).
    us += dma.setup_overhead_us *
          static_cast<double>(step.sharded ? step.parts.size() : 1);
  }
  return us;
}

std::vector<double> ExecutionPlan::per_device_us() const {
  std::vector<double> busy(devices_, 0.0);
  for (const auto& step : steps_) {
    if (step.sharded) {
      for (const auto& part : step.parts) busy[part.device] += part.estimated_us;
    } else {
      busy[step.device] += step.estimated_us;
    }
  }
  return busy;
}

double ExecutionPlan::modeled_throughput_images_per_s(const DmaModel& dma) const {
  double slowest = 0.0;
  for (const auto us : per_device_us()) {
    if (us > 0.0) slowest = std::max(slowest, us + dma.setup_overhead_us);
  }
  return slowest > 0.0 ? 1e6 / slowest : 0.0;
}

std::string ExecutionPlan::describe() const {
  std::ostringstream os;
  os << to_string(kind_) << " plan, " << devices_ << " device"
     << (devices_ == 1 ? "" : "s") << ":\n";
  for (const auto& step : steps_) {
    if (!step.sharded) {
      os << "  L" << step.first_layer << "-L" << step.last_layer << " -> device "
         << step.device << " (" << step.estimated_us << " us)\n";
      continue;
    }
    os << "  L" << step.first_layer << " sharded along "
       << (step.dim == ShardDim::kNeurons ? "neurons" : "fan-in") << ":\n";
    for (const auto& part : step.parts) {
      os << "    device " << part.device << ": neurons [" << part.neuron_begin
         << ", " << part.neuron_begin + part.neuron_count << "), fan-in ["
         << part.input_begin << ", " << part.input_begin + part.input_length
         << ") (" << part.estimated_us << " us)\n";
    }
  }
  return os.str();
}

ExecutionPlan Partitioner::plan_pipeline(const nn::QuantizedMlp& mlp,
                                         const core::NetpuConfig& config,
                                         std::size_t devices) {
  ExecutionPlan plan;
  const std::size_t n = mlp.layers.size();
  const std::size_t stages = std::max<std::size_t>(1, std::min(devices, n));
  plan.devices_ = std::max<std::size_t>(1, devices);
  plan.kind_ = stages > 1 ? PlanKind::kLayerPipeline : PlanKind::kSingleDevice;

  std::vector<double> cost(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cost[i] = layer_us(mlp.layers[i], config);
    total += cost[i];
  }

  // Greedy contiguous partition: close a stage once it reaches the ideal
  // share, keeping enough layers for the remaining stages.
  const double ideal = total / static_cast<double>(stages);
  std::size_t layer = 0;
  for (std::size_t s = 0; s < stages; ++s) {
    PlanStep step;
    step.first_layer = layer;
    step.device = s;
    double acc = 0.0;
    const std::size_t must_leave = stages - s - 1;
    while (layer < n - must_leave &&
           (acc == 0.0 || acc + cost[layer] / 2.0 <= ideal || s + 1 == stages)) {
      acc += cost[layer];
      ++layer;
      if (acc >= ideal && s + 1 < stages) break;
    }
    step.last_layer = layer - 1;
    step.estimated_us = acc;
    plan.steps_.push_back(step);
  }
  return plan;
}

Result<ExecutionPlan> Partitioner::plan(const nn::QuantizedMlp& mlp,
                                        const core::NetpuConfig& config,
                                        std::size_t devices) {
  if (mlp.layers.empty()) {
    return Error{ErrorCode::kInvalidArgument, "cannot plan an empty model"};
  }
  devices = std::max<std::size_t>(1, devices);
  const auto options = config.compile_options();

  std::vector<bool> fits(mlp.layers.size());
  bool all_fit = true;
  for (std::size_t i = 0; i < mlp.layers.size(); ++i) {
    fits[i] = loadable::check_layer_capacity(
                  loadable::LayerSetting::from_layer(mlp.layers[i]), options)
                  .ok();
    all_fit = all_fit && fits[i];
  }

  if (all_fit) return plan_pipeline(mlp, config, devices);

  // At least one layer exceeds one device's capacity. On a single device
  // that is exactly the compiler's capacity rejection; with more devices
  // the oversized layers are sharded and the fitting runs pipelined.
  if (devices == 1) {
    if (auto s = loadable::check_capacity(mlp, options); !s.ok()) return s.error();
  }

  ExecutionPlan plan;
  plan.kind_ = PlanKind::kNeuronSharded;
  plan.devices_ = devices;
  std::size_t next_device = 0;
  std::size_t i = 0;
  while (i < mlp.layers.size()) {
    if (!fits[i]) {
      auto step = shard_layer(mlp, i, config, options, devices);
      if (!step.ok()) return step.error();
      plan.steps_.push_back(std::move(step).value());
      ++i;
      continue;
    }
    PlanStep step;
    step.first_layer = i;
    while (i < mlp.layers.size() && fits[i]) ++i;
    step.last_layer = i - 1;
    step.device = next_device;
    next_device = (next_device + 1) % devices;
    double us = 0.0;
    for (std::size_t l = step.first_layer; l <= step.last_layer; ++l) {
      us += layer_us(mlp.layers[l], config);
    }
    step.estimated_us = us;
    plan.steps_.push_back(step);
  }
  return plan;
}

}  // namespace netpu::runtime
