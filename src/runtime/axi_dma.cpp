#include "runtime/axi_dma.hpp"

#include <limits>

#include "core/netpu.hpp"
#include "sim/scheduler.hpp"

namespace netpu::runtime {

AxiDmaEngine::AxiDmaEngine(std::vector<Word> payload, AxiDmaTimings timings,
                           sim::Fifo<Word>& target)
    : sim::Component("axi_dma"),
      payload_(std::move(payload)),
      timings_(timings),
      target_(target) {
  setup_remaining_ = timings_.setup_cycles;
}

void AxiDmaEngine::reset() {
  setup_remaining_ = timings_.setup_cycles;
  gap_remaining_ = 0;
  beats_in_burst_ = 0;
  pos_ = 0;
}

void AxiDmaEngine::tick(Cycle) {
  if (setup_remaining_ > 0) {
    --setup_remaining_;
    return;
  }
  if (gap_remaining_ > 0) {
    --gap_remaining_;
    return;
  }
  if (pos_ >= payload_.size()) return;
  if (!target_.try_push(payload_[pos_])) return;  // back-pressure
  ++pos_;
  if (++beats_in_burst_ == timings_.burst_beats) {
    beats_in_burst_ = 0;
    gap_remaining_ = timings_.inter_burst_gap;
  }
}

bool AxiDmaEngine::idle() const { return pos_ >= payload_.size(); }

sim::Quiescence AxiDmaEngine::quiescence() const {
  constexpr Cycle kUnbounded = std::numeric_limits<Cycle>::max();
  enum Reason : int { kSetup = 1, kGap, kDone, kBackPressure };
  // Countdown ticks only decrement (the first beat goes out the tick
  // *after* a counter reaches zero), so the full remaining span is skippable.
  if (setup_remaining_ > 0) return {setup_remaining_, kSetup};
  if (gap_remaining_ > 0) return {gap_remaining_, kGap};
  if (pos_ >= payload_.size()) return {kUnbounded, kDone};
  if (target_.full()) return {kUnbounded, kBackPressure};
  return {};
}

void AxiDmaEngine::skip(Cycle n, int reason) {
  (void)reason;
  if (setup_remaining_ > 0) {
    setup_remaining_ -= n;
    return;
  }
  if (gap_remaining_ > 0) {
    gap_remaining_ -= n;
    return;
  }
  if (pos_ >= payload_.size()) return;
  target_.record_push_stalls(n);  // each blocked try_push counted a stall
}

common::Result<core::RunResult> cosimulate(const core::NetpuConfig& config,
                                           std::span<const Word> stream,
                                           const AxiDmaTimings& timings) {
  std::vector<Word> payload(stream.begin(), stream.end());

  core::Netpu netpu(config);
  netpu.reset();
  if (auto s = netpu.load(payload); !s.ok()) return s.error();

  // The DMA stream lands in a FIFO sized like a modest AXI interconnect
  // buffer; the NetPU router pops from it at its own pace.
  sim::Fifo<Word> axi_stream("axi_stream", 64, 64);
  netpu.set_external_source(&axi_stream);
  AxiDmaEngine dma(std::move(payload), timings, axi_stream);

  sim::Scheduler scheduler;
  scheduler.add(&dma);
  scheduler.add(&netpu);
  for (int i = 0; i < netpu.lpu_count(); ++i) scheduler.add(&netpu.lpu(i));
  const auto run = scheduler.run(500'000'000);
  if (!run.finished) {
    return common::Error{
        common::ErrorCode::kInternal,
        "co-simulation hit the cycle limit; busy components: " + run.busy};
  }

  core::RunResult r;
  r.predicted = netpu.predicted();
  r.output_values = netpu.output_values();
  r.probabilities = netpu.probabilities();
  r.cycles = run.cycles + timings.irq_cycles;
  for (const auto& p : netpu.layer_profile()) {
    r.layers.push_back(core::LayerProfile{p.layer, p.queued, p.active, p.end});
  }
  r.stats = netpu.collect_stats();
  return r;
}

}  // namespace netpu::runtime
