#include "runtime/device.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>

namespace netpu::runtime {

using common::Error;
using common::ErrorCode;
using common::Result;
using common::Status;

struct Device::Context {
  explicit Context(const core::NetpuConfig& config) : netpu(config) {
    scheduler.add(&netpu);
    for (int i = 0; i < netpu.lpu_count(); ++i) scheduler.add(&netpu.lpu(i));
  }
  core::Netpu netpu;
  sim::Scheduler scheduler;
};

struct Device::Pool {
  std::mutex mutex;  // guards free_list and the occupancy/stage counters below
  std::condition_variable cv;
  std::vector<Context*> free_list;
  // Occupancy and stage accounting (guarded by mutex).
  std::size_t total = 0;
  std::size_t peak_in_use = 0;
  std::uint64_t acquires = 0;
  std::uint64_t waits = 0;
  std::uint64_t stage_runs = 0;
  double busy_us = 0.0;
  // Paced-occupancy busy horizon: the wall-clock instant up to which the
  // modeled device time is already spoken for (reserve_paced).
  std::chrono::steady_clock::time_point pace_horizon{};
  std::uint64_t paced_reservations = 0;
  double paced_us = 0.0;
};

Device::Device(const core::NetpuConfig& config, std::size_t contexts)
    : config_(config), pool_(std::make_unique<Pool>()) {
  const std::size_t n = contexts == 0 ? 1 : contexts;
  contexts_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    contexts_.push_back(std::make_unique<Context>(config_));
    pool_->free_list.push_back(contexts_.back().get());
  }
  pool_->total = contexts_.size();
}

Device::~Device() = default;

Result<std::unique_ptr<Device>> Device::create(const core::NetpuConfig& config,
                                               std::size_t contexts) {
  if (auto s = config.validate(); !s.ok()) return s.error();
  return std::unique_ptr<Device>(new Device(config, contexts));
}

Device::Context* Device::acquire() {
  std::unique_lock<std::mutex> lock(pool_->mutex);
  pool_->acquires += 1;
  if (pool_->free_list.empty()) pool_->waits += 1;
  pool_->cv.wait(lock, [this] { return !pool_->free_list.empty(); });
  Context* context = pool_->free_list.back();
  pool_->free_list.pop_back();
  pool_->peak_in_use =
      std::max(pool_->peak_in_use, pool_->total - pool_->free_list.size());
  return context;
}

void Device::release(Context* context) {
  {
    std::lock_guard<std::mutex> lock(pool_->mutex);
    pool_->free_list.push_back(context);
  }
  pool_->cv.notify_one();
}

void Device::finish_stage(double us) {
  std::lock_guard<std::mutex> lock(pool_->mutex);
  pool_->stage_runs += 1;
  pool_->busy_us += us;
}

DeviceStats Device::stats() const {
  std::lock_guard<std::mutex> lock(pool_->mutex);
  DeviceStats s;
  s.contexts = pool_->total;
  s.in_use = pool_->total - pool_->free_list.size();
  s.peak_in_use = pool_->peak_in_use;
  s.acquires = pool_->acquires;
  s.waits = pool_->waits;
  s.stage_runs = pool_->stage_runs;
  s.busy_us = pool_->busy_us;
  s.paced_reservations = pool_->paced_reservations;
  s.paced_us = pool_->paced_us;
  return s;
}

std::chrono::steady_clock::time_point Device::reserve_paced(double us) {
  const auto now = std::chrono::steady_clock::now();
  const auto width = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::micro>(us < 0.0 ? 0.0 : us));
  std::lock_guard<std::mutex> lock(pool_->mutex);
  if (pool_->pace_horizon < now) pool_->pace_horizon = now;
  pool_->pace_horizon += width;
  pool_->paced_reservations += 1;
  pool_->paced_us += us < 0.0 ? 0.0 : us;
  return pool_->pace_horizon;
}

Status Device::load_resident(std::span<const Word> model_stream) {
  for (auto& context : contexts_) {
    if (auto s = context->netpu.load_model_resident(model_stream); !s.ok()) {
      return s;
    }
  }
  return Status::ok_status();
}

Result<core::RunResult> Device::run_cycle(std::span<const Word> input_stream,
                                          const core::RunOptions& options) {
  Context* context = acquire();
  core::Netpu& netpu = context->netpu;
  netpu.set_trace(options.trace);
  context->scheduler.reset();  // rewinds resident channels, keeps the model
  Result<core::RunResult> result = [&]() -> Result<core::RunResult> {
    if (auto s = netpu.set_input(input_stream); !s.ok()) return s.error();
    const auto run = context->scheduler.run(options.max_cycles);
    if (!run.finished) {
      return Error{ErrorCode::kInternal,
                   "simulation hit the cycle limit; busy components: " + run.busy};
    }
    return core::collect_run_result(netpu, run.cycles);
  }();
  netpu.set_trace(nullptr);
  release(context);
  return result;
}

Result<core::RunResult> Device::run_fused(std::span<const Word> stream,
                                          const core::RunOptions& options,
                                          std::span<const Word> resident_model) {
  Context* context = acquire();
  core::Netpu& netpu = context->netpu;
  netpu.set_trace(options.trace);
  context->scheduler.reset();
  Result<core::RunResult> result = [&]() -> Result<core::RunResult> {
    if (auto s = netpu.load(stream); !s.ok()) return s.error();
    const auto run = context->scheduler.run(options.max_cycles);
    if (!run.finished) {
      return Error{ErrorCode::kInternal,
                   "simulation hit the cycle limit; busy components: " + run.busy};
    }
    return core::collect_run_result(netpu, run.cycles);
  }();
  netpu.set_trace(nullptr);
  // A fused load evicts any resident model from this context; restore it so
  // later runs stay warm.
  if (!resident_model.empty()) {
    (void)netpu.load_model_resident(resident_model);
  }
  release(context);
  return result;
}

Device::StageLease Device::acquire_stage() { return StageLease(this, acquire()); }

Device::StageLease::~StageLease() {
  if (device_ == nullptr) return;
  device_->release(context_);
  device_->finish_stage(us_);
}

}  // namespace netpu::runtime
