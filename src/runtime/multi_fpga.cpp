#include "runtime/multi_fpga.hpp"

#include <algorithm>
#include <cassert>

#include "hw/activation_unit.hpp"

namespace netpu::runtime {

MultiFpgaPipeline::MultiFpgaPipeline(nn::QuantizedMlp mlp,
                                     const core::NetpuConfig& config, int boards,
                                     DmaModel dma)
    : mlp_(std::move(mlp)), config_(config), dma_(dma) {
  assert(boards >= 1);
  plan_ = Partitioner::plan_pipeline(mlp_, config_,
                                     static_cast<std::size_t>(boards));
  for (const auto& step : plan_.steps()) {
    stages_.push_back(PipelineStage{step.first_layer, step.last_layer,
                                    step.estimated_us});
  }
  if (auto fast = core::FastExecutor::create(mlp_, config_); fast.ok()) {
    fast_ = std::make_unique<core::FastExecutor>(std::move(fast).value());
  }
}

double MultiFpgaPipeline::single_image_latency_us() const {
  return plan_.single_image_latency_us(dma_);
}

double MultiFpgaPipeline::throughput_images_per_s() const {
  return plan_.modeled_throughput_images_per_s(dma_);
}

std::size_t MultiFpgaPipeline::classify(std::span<const std::uint8_t> image) const {
  if (fast_ == nullptr) {
    // Model exceeds this instance's capabilities — golden evaluation only.
    return mlp_.infer(image).predicted;
  }
  // Walk the pipeline slice by slice, exactly the codes each board would
  // hand to the next one.
  const std::size_t last = mlp_.layers.size() - 1;
  std::vector<std::int32_t> codes;
  std::vector<std::int64_t> values;
  for (const auto& stage : stages_) {
    for (std::size_t l = stage.first_layer; l <= stage.last_layer; ++l) {
      if (l == 0) {
        codes = fast_->input_layer_codes(image);
      } else if (l == last) {
        values = fast_->output_values(codes);
      } else {
        codes = fast_->forward_layer(l, codes);
      }
    }
  }
  return hw::maxout(values);
}

}  // namespace netpu::runtime
