#include "runtime/multi_fpga.hpp"

#include <algorithm>
#include <cassert>

#include "hw/activation_unit.hpp"
#include "loadable/layer_setting.hpp"

namespace netpu::runtime {
namespace {

// Estimated cycles of one layer in isolation (the slice estimator reuses
// the whole-network model on single-layer granularity).
double layer_us(const nn::QuantizedLayer& layer, const core::NetpuConfig& config) {
  nn::QuantizedMlp one;
  one.layers.push_back(layer);
  const auto b = core::estimate_latency(one, config);
  return config.cycles_to_us(b.total());
}

}  // namespace

MultiFpgaPipeline::MultiFpgaPipeline(nn::QuantizedMlp mlp,
                                     const core::NetpuConfig& config, int boards,
                                     DmaModel dma)
    : mlp_(std::move(mlp)), config_(config), dma_(dma) {
  assert(boards >= 1);
  const std::size_t n = mlp_.layers.size();
  const auto stages = static_cast<std::size_t>(
      std::min<std::size_t>(static_cast<std::size_t>(boards), n));

  std::vector<double> cost(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cost[i] = layer_us(mlp_.layers[i], config_);
    total += cost[i];
  }

  // Greedy contiguous partition: close a stage once it reaches the ideal
  // share, keeping enough layers for the remaining stages.
  const double ideal = total / static_cast<double>(stages);
  std::size_t layer = 0;
  for (std::size_t s = 0; s < stages; ++s) {
    PipelineStage st;
    st.first_layer = layer;
    double acc = 0.0;
    const std::size_t must_leave = stages - s - 1;
    while (layer < n - must_leave &&
           (acc == 0.0 || acc + cost[layer] / 2.0 <= ideal || s + 1 == stages)) {
      acc += cost[layer];
      ++layer;
      if (acc >= ideal && s + 1 < stages) break;
    }
    st.last_layer = layer - 1;
    st.stage_us = acc;
    stages_.push_back(st);
  }
  assert(stages_.back().last_layer == n - 1);
}

double MultiFpgaPipeline::single_image_latency_us() const {
  double us = 0.0;
  for (const auto& s : stages_) {
    us += s.stage_us;
    us += dma_.setup_overhead_us;  // per-board stream setup / hop transfer
  }
  return us;
}

double MultiFpgaPipeline::throughput_images_per_s() const {
  double slowest = 0.0;
  for (const auto& s : stages_) {
    slowest = std::max(slowest, s.stage_us + dma_.setup_overhead_us);
  }
  return slowest > 0.0 ? 1e6 / slowest : 0.0;
}

std::size_t MultiFpgaPipeline::classify(std::span<const std::uint8_t> image) const {
  std::vector<std::int32_t> codes(image.begin(), image.end());
  for (std::size_t l = 0; l + 1 < mlp_.layers.size(); ++l) {
    codes = nn::layer_forward_codes(mlp_.layers[l], codes);
  }
  const auto values = nn::output_layer_values(mlp_.layers.back(), codes);
  return hw::maxout(values);
}

}  // namespace netpu::runtime
