// Execution plans: how one inference maps onto a set of simulated NetPU-M
// devices (Sec. I-B scale-out, generalized).
//
// A runtime::Partitioner turns (model, instance config, device count) into
// one of three plan kinds:
//  * kSingleDevice — every layer on device 0; behavior-identical to the
//    historical single-instance path.
//  * kLayerPipeline — contiguous layer slices across devices, balanced on
//    the per-layer latency estimate (the Sec. I-B multi-FPGA pipeline:
//    device N runs slice L on image i while device N+1 runs L+1 on i-1).
//  * kNeuronSharded — at least one layer exceeds a single device's buffer
//    capacity and is split across devices, either along the neuron
//    dimension (each shard owns a neuron window with full fan-in) or along
//    the fan-in dimension (each shard owns a chunk-aligned input window of
//    every neuron; the raw 32-bit wrap-around ACCU partial sums are reduced
//    before BN -> ACTIV -> QUAN, so the result stays bit-exact).
//
// The partitioner *fits* oversized models by querying the same per-layer
// capacity limits the compiler enforces (loadable::check_layer_capacity on
// sliced settings) instead of rejecting them; a model no shard assignment
// can fit comes back as a clean kCapacityExceeded Status.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/config.hpp"
#include "nn/quantized_mlp.hpp"
#include "runtime/dma.hpp"

namespace netpu::runtime {

enum class PlanKind {
  kSingleDevice,
  kLayerPipeline,
  kNeuronSharded,
};

[[nodiscard]] constexpr const char* to_string(PlanKind k) {
  switch (k) {
    case PlanKind::kSingleDevice: return "single-device";
    case PlanKind::kLayerPipeline: return "layer-pipeline";
    case PlanKind::kNeuronSharded: return "neuron-sharded";
  }
  return "?";
}

// Which dimension a sharded layer is split along.
enum class ShardDim {
  kNeurons,  // neuron windows, full fan-in each
  kFanIn,    // chunk-aligned fan-in windows, all neurons each
};

// One shard of a sharded layer, pinned to one device.
struct ShardPart {
  std::size_t device = 0;
  int neuron_begin = 0;
  int neuron_count = 0;
  int input_begin = 0;   // fan-in window start (multiple of values_per_chunk)
  int input_length = 0;  // fan-in window length
  // Exactly one fan-in shard loads the ACCU bias port; the reduction would
  // otherwise count the bias once per shard.
  bool carries_bias = true;
  double estimated_us = 0.0;  // latency-model estimate of this shard alone
};

// One step of the plan: a contiguous, inclusive layer range on one device,
// or a single sharded layer spread over several.
struct PlanStep {
  std::size_t first_layer = 0;
  std::size_t last_layer = 0;
  std::size_t device = 0;  // meaningful when !sharded
  bool sharded = false;
  ShardDim dim = ShardDim::kNeurons;
  std::vector<ShardPart> parts;  // non-empty iff sharded
  double estimated_us = 0.0;     // unsharded: slice total; sharded: max part
};

class ExecutionPlan {
 public:
  [[nodiscard]] PlanKind kind() const { return kind_; }
  [[nodiscard]] std::size_t device_count() const { return devices_; }
  [[nodiscard]] const std::vector<PlanStep>& steps() const { return steps_; }

  // Latency of one image through every step in order, plus one DMA hop per
  // device-to-device handoff (sharded steps pay one scatter hop per part).
  [[nodiscard]] double single_image_latency_us(const DmaModel& dma = {}) const;

  // Modeled steady-state throughput: consecutive images overlap across
  // devices, so the busiest device paces the pipeline. This is the latency
  // model's projection (deterministic), not a wall-clock measurement.
  [[nodiscard]] double modeled_throughput_images_per_s(const DmaModel& dma = {}) const;

  // Estimated busy microseconds per device for one image.
  [[nodiscard]] std::vector<double> per_device_us() const;

  [[nodiscard]] std::string describe() const;

 private:
  friend class Partitioner;
  PlanKind kind_ = PlanKind::kSingleDevice;
  std::size_t devices_ = 1;
  std::vector<PlanStep> steps_;
};

class Partitioner {
 public:
  // Plan `mlp` onto `devices` instances of `config`. Chooses single-device,
  // layer pipeline, or (when a layer exceeds one device's capacity) neuron/
  // fan-in sharding. Fails with kCapacityExceeded when no assignment fits —
  // the same error single-device loading reports today.
  [[nodiscard]] static common::Result<ExecutionPlan> plan(
      const nn::QuantizedMlp& mlp, const core::NetpuConfig& config,
      std::size_t devices);

  // The greedy latency-balanced contiguous-layer pipeline on its own, with
  // no capacity logic (never fails; stages clamp to the layer count).
  // MultiFpgaPipeline wraps this directly for API compatibility.
  [[nodiscard]] static ExecutionPlan plan_pipeline(const nn::QuantizedMlp& mlp,
                                                   const core::NetpuConfig& config,
                                                   std::size_t devices);
};

}  // namespace netpu::runtime
