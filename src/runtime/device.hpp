// runtime::Device: one simulated NetPU-M board.
//
// A Device owns a pool of persistent execution contexts (a core::Netpu plus
// its sim::Scheduler, reset — not reconstructed — between requests) and the
// occupancy accounting the serving metrics surface exports. It is the unit
// the Partitioner places ExecutionPlan steps on: a single-device session
// uses one Device exactly the way engine::Session historically used its
// context pool (behavior-identical), while multi-device plans acquire a
// device exclusively per stage/shard and charge the stage's modeled
// microseconds to it, so per-device occupancy and stall counts reflect the
// pipeline's balance.
//
// Execution backends:
//  * cycle-accurate runs (run_cycle / run_fused) tick a pooled context's
//    scheduler — only possible against a full resident model (the loadable
//    format has no slice streams), i.e. on single-device plans;
//  * multi-device stages run on the bit-true core::FastExecutor kernels
//    owned by the session; the Device contributes exclusivity (acquire /
//    release) and accounting.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/netpu.hpp"
#include "core/run_types.hpp"
#include "sim/scheduler.hpp"

namespace netpu::runtime {

// Context-pool occupancy plus the multi-device stage accounting. A `waits`
// much smaller than `acquires` means the pool is sized right; `busy_us`
// across the device set shows how evenly the partitioner balanced stages.
struct DeviceStats {
  std::size_t contexts = 0;      // pool size
  std::size_t in_use = 0;        // busy right now
  std::size_t peak_in_use = 0;   // high-water mark
  std::uint64_t acquires = 0;    // total acquisitions
  std::uint64_t waits = 0;       // acquisitions that blocked
  std::uint64_t stage_runs = 0;  // plan stages/shards executed here
  double busy_us = 0.0;          // modeled microseconds of those stages
  std::uint64_t paced_reservations = 0;  // wall-clock occupancy reservations
  double paced_us = 0.0;                 // microseconds of reserved wall time
};

class Device {
  struct Context;  // one persistent Netpu + Scheduler (defined in device.cpp)
  struct Pool;     // mutex/condvar guarded free list (defined in device.cpp)

 public:
  // Fallible construction: validates the instance configuration and builds
  // `contexts` persistent execution contexts.
  [[nodiscard]] static common::Result<std::unique_ptr<Device>> create(
      const core::NetpuConfig& config, std::size_t contexts);

  ~Device();
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const core::NetpuConfig& config() const { return config_; }
  [[nodiscard]] std::size_t context_count() const { return contexts_.size(); }
  [[nodiscard]] DeviceStats stats() const;

  // Make a compiled model stream resident in every context (performs the
  // instance capability checks). Single-device plans only — a slice of a
  // model has no loadable encoding.
  [[nodiscard]] common::Status load_resident(std::span<const Word> model_stream);

  // One cycle-accurate request against the resident model on a pooled warm
  // context. Thread-safe; blocks while all contexts are busy.
  [[nodiscard]] common::Result<core::RunResult> run_cycle(
      std::span<const Word> input_stream, const core::RunOptions& options);

  // Compatibility mode: one fused loadable with full streaming on a pooled
  // context. `resident_model` (may be empty) is restored afterwards — a
  // fused load evicts whatever was resident.
  [[nodiscard]] common::Result<core::RunResult> run_fused(
      std::span<const Word> stream, const core::RunOptions& options,
      std::span<const Word> resident_model);

  // Exclusive occupancy for one plan stage/shard executed on the session's
  // fast kernels: holds a context for the scope and charges `us` of modeled
  // busy time at release.
  class StageLease {
   public:
    StageLease(StageLease&& o) noexcept
        : device_(o.device_), context_(o.context_), us_(o.us_) {
      o.device_ = nullptr;
      o.context_ = nullptr;
    }
    StageLease& operator=(StageLease&&) = delete;
    StageLease(const StageLease&) = delete;
    StageLease& operator=(const StageLease&) = delete;
    ~StageLease();
    void charge(double us) { us_ += us; }

   private:
    friend class Device;
    StageLease(Device* device, Context* context)
        : device_(device), context_(context) {}
    Device* device_;
    Context* context_;
    double us_ = 0.0;
  };
  [[nodiscard]] StageLease acquire_stage();

  // Paced occupancy (RunOptions::pace_devices): reserve `us` of exclusive
  // modeled device time on the wall clock and return when the reservation
  // ends. Reservations queue back-to-back behind the device's busy horizon
  // (horizon = max(horizon, now) + us), so concurrent requests serialize on
  // the *modeled* hardware exactly like an execution pipeline — the caller
  // sleeps until the returned time before moving to its next stage. The
  // horizon arithmetic, not the sleep, is what bounds throughput: a late
  // waker reserves behind whoever got there first.
  [[nodiscard]] std::chrono::steady_clock::time_point reserve_paced(double us);

 private:
  Device(const core::NetpuConfig& config, std::size_t contexts);

  [[nodiscard]] Context* acquire();
  void release(Context* context);
  void finish_stage(double us);

  core::NetpuConfig config_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::unique_ptr<Pool> pool_;
};

}  // namespace netpu::runtime
