// AXI DMA co-simulation (first-principles replacement for the constant
// DmaModel overhead).
//
// The paper attributes the simulated-vs-measured latency gap to "DMA
// transmission and Processing System control" on the Zynq UltraScale+.
// This module models that path structurally: descriptor setup on the PS, a
// burst-based AXI stream into the accelerator's Network Input FIFO (one
// 64-bit beat per cycle inside a burst, re-arbitration gaps between
// bursts), and a completion-interrupt tail. Co-simulated against the
// NetPU's own consumption, so back-pressure from a busy LPU stalls the
// stream exactly as the hardware handshake would.
#pragma once

#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/run_types.hpp"
#include "sim/component.hpp"
#include "sim/fifo.hpp"

namespace netpu::runtime {

struct AxiDmaTimings {
  // PS-side driver work before the first beat: descriptor writes, cache
  // maintenance, MMIO doorbell. 5.9 us at 100 MHz reproduces the paper's
  // measured-vs-simulated gap (the IRQ tail below is a few cycles of it).
  Cycle setup_cycles = 560;
  // Beats per AXI burst (AXI4 INCR cap).
  std::uint32_t burst_beats = 256;
  // Re-arbitration / address-phase gap between bursts.
  Cycle inter_burst_gap = 8;
  // Completion interrupt + PS acknowledgment after the accelerator
  // finishes.
  Cycle irq_cycles = 30;
};

// The DMA engine: a clocked component pushing the loadable into a stream
// FIFO, one beat per cycle within bursts.
class AxiDmaEngine : public sim::Component {
 public:
  AxiDmaEngine(std::vector<Word> payload, AxiDmaTimings timings,
               sim::Fifo<Word>& target);

  void reset() override;
  void tick(Cycle cycle) override;
  [[nodiscard]] bool idle() const override;
  // Event-driven scheduling: descriptor-setup and inter-burst countdowns,
  // back-pressure stalls and the post-payload quiet span become clock jumps.
  [[nodiscard]] sim::Quiescence quiescence() const override;
  void skip(Cycle n, int reason) override;

  [[nodiscard]] std::uint64_t beats_sent() const { return pos_; }

 private:
  std::vector<Word> payload_;
  AxiDmaTimings timings_;
  sim::Fifo<Word>& target_;
  Cycle setup_remaining_ = 0;
  Cycle gap_remaining_ = 0;
  std::uint32_t beats_in_burst_ = 0;
  std::size_t pos_ = 0;
};

// Full-system co-simulation: DMA engine + NetPU on one clock. Returns the
// accelerator RunResult with `cycles` covering setup, transfer, compute and
// the IRQ tail — the Table VI "measured" quantity, derived instead of
// added as a constant.
[[nodiscard]] common::Result<core::RunResult> cosimulate(
    const core::NetpuConfig& config, std::span<const Word> stream,
    const AxiDmaTimings& timings = {});

}  // namespace netpu::runtime
