#include "runtime/driver.hpp"

#include "loadable/compiler.hpp"

namespace netpu::runtime {

using common::Result;

Result<MeasuredInference> Driver::infer(const nn::QuantizedMlp& mlp,
                                        std::span<const std::uint8_t> image,
                                        core::RunMode mode) {
  auto stream =
      loadable::compile(mlp, image, accelerator_.config().compile_options());
  if (!stream.ok()) return stream.error();

  core::RunOptions options;
  options.mode = mode;
  auto run = accelerator_.run(stream.value(), options);
  if (!run.ok()) return run.error();

  MeasuredInference m;
  m.predicted = run.value().predicted;
  m.cycles = run.value().cycles;
  m.simulated_us = run.value().latency_us(accelerator_.config());
  m.measured_us =
      m.simulated_us + dma_.transfer_overhead_us(stream.value().size());
  return m;
}

Result<BatchResult> Driver::infer_batch(
    const nn::QuantizedMlp& mlp, std::span<const std::vector<std::uint8_t>> images,
    std::span<const int> labels, std::size_t timed_samples) {
  BatchResult batch;
  batch.total = images.size();
  double latency_sum = 0.0;
  std::size_t timed = 0;
  for (std::size_t i = 0; i < images.size(); ++i) {
    const bool timed_run = timed < timed_samples;
    auto m = infer(mlp, images[i],
                   timed_run ? core::RunMode::kCycleAccurate
                             : core::RunMode::kFunctional);
    if (!m.ok()) return m.error();
    if (timed_run) {
      latency_sum += m.value().measured_us;
      ++timed;
    }
    if (static_cast<int>(m.value().predicted) == labels[i]) ++batch.correct;
  }
  batch.mean_measured_us = timed ? latency_sum / static_cast<double>(timed) : 0.0;
  return batch;
}

}  // namespace netpu::runtime
