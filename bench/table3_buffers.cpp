// Regenerates Table III: the Data Buffer Cluster of one LPU (names, widths,
// depths) plus the BRAM tiles each buffer consumes under the resource model.
#include <cstdio>

#include "core/config.hpp"
#include "hw/resource_model.hpp"

int main() {
  const auto config = netpu::core::NetpuConfig::paper_instance();
  std::printf("Table III: Data Buffer Cluster in LPU\n\n");
  std::printf("%-18s %12s %8s %10s\n", "Buffer Name", "Output Width", "Depth",
              "BRAM36");
  double total = 0.0;
  for (const auto& spec : config.lpu.buffer_specs()) {
    // 128-bit parameter buffers store two 64-bit stream words per entry.
    const auto bram = netpu::hw::ResourceModel::buffer_bram36(spec);
    total += bram;
    std::printf("%-18s %9d bits %8ld %10.1f\n", spec.name.c_str(),
                spec.width_bits, spec.depth, bram);
  }
  std::printf("%-18s %22s %10.1f  (x%d LPUs)\n", "Total per LPU", "", total,
              config.lpus);

  std::printf("\nNetPU FIFO cluster:\n");
  for (const auto& spec : config.fifo_specs()) {
    std::printf("%-18s %9d bits %8ld %10.1f\n", spec.name.c_str(),
                spec.width_bits, spec.depth,
                netpu::hw::ResourceModel::buffer_bram36(spec));
  }
  std::printf("\nDerived limits: max input length %u, max neurons per layer %u\n",
              config.max_input_length, config.max_neurons_per_layer);
  return 0;
}
