// Regenerates Table IV: resource utilization of the four single-TNPU
// instances on Ultra96-V2 (Multi-Threshold cap 8 vs 4 bits x BN multiplier
// in DSP vs LUT fabric).
#include <cstdio>

#include "hw/resource_model.hpp"

using namespace netpu::hw;

int main() {
  const auto device = ultra96_v2();
  std::printf("Table IV: Resource Utilization of a Single TNPU on Ultra96-V2\n");
  std::printf("(8 XNOR + 8 DSP multipliers, all activations, per instance)\n\n");
  std::printf("%-14s %-8s | %7s %7s | %5s %6s | %4s %6s | paper LUT\n",
              "Max MT bits", "BN mul", "LUTs", "rate", "DSPs", "rate", "FFs",
              "rate");

  struct Row {
    int mt_bits;
    MulImpl bn;
    long paper_luts;
  };
  const Row rows[] = {
      {8, MulImpl::kDsp, 19049},
      {8, MulImpl::kLut, 20138},
      {4, MulImpl::kDsp, 2705},
      {4, MulImpl::kLut, 3794},
  };
  for (const auto& row : rows) {
    const auto r = ResourceModel::tnpu({8, row.mt_bits, MulImpl::kDsp, row.bn});
    const auto u = utilization(r, device);
    std::printf("%-14d %-8s | %7ld %6.2f%% | %5ld %5.2f%% | %4ld %5.2f%% | %ld\n",
                row.mt_bits, to_string(row.bn), r.luts, 100.0 * u.luts, r.dsps,
                100.0 * u.dsps, r.ffs, 100.0 * u.ffs, row.paper_luts);
  }
  std::printf("\nTotal resources: %ld LUTs, %ld DSPs, %ld FFs\n", device.luts,
              device.dsps, device.ffs);
  std::printf("\nTakeaway (paper Sec. IV): the 8-bit Multi-Threshold bank costs "
              ">27%% of the device's LUTs,\nso the shipped NetPU-M instance caps "
              "Multi-Threshold at 4 bits (~4-5%%).\n");
  return 0;
}
