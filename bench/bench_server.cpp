// Serving-policy sweep: push one request burst through the serving
// front-end (queue -> dynamic batcher -> registry -> engine) under a grid
// of (max_batch_size, max_wait_us) policies and report throughput, mean
// micro-batch size and p50/p95/p99 latency per policy — end-to-end and
// split per stage (queue-wait / batch-form / execute). The three stages
// partition submit -> completion, so their means must sum to the
// end-to-end mean (checked below); percentile sums only approximate the
// end-to-end percentiles and are reported for eyeballing.
//
// The burst pattern isolates the batcher: every request is queued before
// the batcher starts, so batch formation depends only on the policy, and
// predictions stay bit-identical across the whole grid (asserted below).
//
// The grid runs once per execution backend (cycle-accurate simulator and
// the functional fast path), with a backend column; predictions must be
// bit-identical across every (policy, backend) combination.
//
// `bench_server --smoke` runs a tiny request count — the CI Release job
// uses it to exercise the serving path (both backends) with optimizations
// on.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "data/synthetic_mnist.hpp"
#include "nn/model_zoo.hpp"
#include "serve/server.hpp"

using namespace netpu;

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_server [--smoke]\n");
      return 2;
    }
  }
  const std::size_t requests = smoke ? 24 : 128;
  const std::size_t contexts = 4;

  common::Xoshiro256 rng(7);
  const std::vector<nn::ModelVariant> variants = {
      {nn::Topology::kTfc, 1, 1}, {nn::Topology::kTfc, 2, 2}};
  std::vector<std::string> names;
  std::vector<nn::QuantizedMlp> mlps;
  for (const auto& v : variants) {
    names.push_back(v.name());
    mlps.push_back(nn::make_random_quantized_model(v, true, rng));
  }
  const auto dataset = data::make_synthetic_mnist(requests, 13);
  const auto config = core::NetpuConfig::paper_instance();

  std::printf(
      "Serving a %zu-request burst over %zu models, %zu contexts/model:\n\n",
      requests, names.size(), contexts);
  std::printf("%-24s %8s %10s %10s %10s %10s %10s %8s\n", "policy", "backend",
              "req/s", "batches", "mean sz", "p50 us", "p95 us", "p99 us");
  const auto print_stage = [](const char* name,
                              const serve::LatencyHistogram& h) {
    std::printf("  %-22s %8s %10s %10s %10s %10.1f %10.1f %8.1f\n", name, "",
                "", "", "", h.p50(), h.p95(), h.p99());
  };

  struct Policy {
    std::size_t max_batch;
    std::uint64_t max_wait_us;
  };
  const std::vector<Policy> grid = {{1, 0},  {4, 0},    {8, 0},
                                    {8, 500}, {16, 500}, {32, 2000}};

  struct Combo {
    Policy policy;
    core::Backend backend;
  };
  std::vector<Combo> combos;
  for (const auto backend : {core::Backend::kCycle, core::Backend::kFast}) {
    for (const auto& policy : grid) combos.push_back({policy, backend});
  }

  // Predictions from the first (policy, backend) combination; every other
  // combination — including the fast functional backend — must reproduce
  // them exactly.
  std::vector<std::size_t> reference;
  for (const auto& [policy, backend] : combos) {
    serve::ModelRegistry registry(
        config, {.resident_cap = names.size(), .contexts_per_model = contexts});
    for (std::size_t m = 0; m < names.size(); ++m) {
      if (auto s = registry.add_model(names[m], mlps[m]); !s.ok()) {
        std::fprintf(stderr, "register failed: %s\n", s.error().to_string().c_str());
        return 1;
      }
    }
    serve::ServerOptions options;
    options.queue_capacity = requests;
    options.policy = {policy.max_batch, policy.max_wait_us};
    options.dispatch_threads = contexts;
    options.run_options.backend = backend;
    serve::Server server(registry, options);

    // Queue the whole burst, then start the batcher: batch formation is a
    // pure function of the policy.
    std::vector<serve::RequestHandle> handles;
    handles.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      auto h = server.submit(names[i % names.size()], dataset.images[i]);
      if (!h.ok()) {
        std::fprintf(stderr, "submit failed: %s\n", h.error().to_string().c_str());
        return 1;
      }
      handles.push_back(std::move(h).value());
    }
    const auto start = std::chrono::steady_clock::now();
    server.start();
    std::vector<std::size_t> predictions;
    predictions.reserve(requests);
    for (auto& h : handles) {
      auto r = h.wait();
      if (!r.ok()) {
        std::fprintf(stderr, "request failed: %s\n", r.error().to_string().c_str());
        return 1;
      }
      predictions.push_back(r.value().predicted);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    server.stop();

    // Neither the batching policy nor the execution backend may change
    // results.
    if (reference.empty()) {
      reference = predictions;
    } else if (predictions != reference) {
      std::fprintf(stderr,
                   "(policy, backend=%s) changed predictions — serving is "
                   "broken\n",
                   core::to_string(backend));
      return 1;
    }

    const auto totals = server.stats().totals();
    char label[64];
    std::snprintf(label, sizeof label, "batch<=%zu wait<=%llu us",
                  policy.max_batch,
                  static_cast<unsigned long long>(policy.max_wait_us));
    std::printf("%-24s %8s %10.1f %10llu %10.2f %10.1f %10.1f %8.1f\n", label,
                core::to_string(backend),
                wall > 0.0 ? static_cast<double>(requests) / wall : 0.0,
                static_cast<unsigned long long>(totals.counters.batches),
                totals.counters.mean_batch_size(), totals.latency.p50(),
                totals.latency.p95(), totals.latency.p99());
    print_stage("queue-wait", totals.queue_wait);
    print_stage("batch-form", totals.batch_form);
    print_stage("execute", totals.execute);

    // The stages partition submit -> completion per request, so their exact
    // means must sum to the end-to-end mean (slack: duration_cast truncation
    // of up to 1 us per stage per request). Percentile sums are only
    // approximate — distributions don't add — so those get a loose sanity
    // band rather than an equality.
    const double stage_mean_sum = totals.queue_wait.mean() +
                                  totals.batch_form.mean() +
                                  totals.execute.mean();
    const double e2e_mean = totals.latency.mean();
    if (std::abs(stage_mean_sum - e2e_mean) > 0.05 * e2e_mean + 4.0) {
      std::fprintf(stderr,
                   "stage means (%.1f us) do not sum to end-to-end mean "
                   "(%.1f us) — stage accounting is broken\n",
                   stage_mean_sum, e2e_mean);
      return 1;
    }
    const double stage_p50_sum = totals.queue_wait.p50() +
                                 totals.batch_form.p50() +
                                 totals.execute.p50();
    if (stage_p50_sum < 0.25 * totals.latency.p50() ||
        stage_p50_sum > 4.0 * totals.latency.p99() + 4.0) {
      std::fprintf(stderr,
                   "stage p50 sum (%.1f us) wildly off the end-to-end p50 "
                   "(%.1f us)\n",
                   stage_p50_sum, totals.latency.p50());
      return 1;
    }
  }

  std::printf(
      "\npredictions bit-identical across all %zu policies and both "
      "backends; batching trades per-request queueing delay for dispatch "
      "efficiency only.\n",
      grid.size());
  return 0;
}
