// Regenerates Table VI: NetPU-M (measured, i.e. simulated + DMA/PS
// overhead) against the four published FINN instances — resources, latency
// per model/precision, and wall power.
//
// The paper's argument this table carries:
//  * one NetPU-M bitstream serves all six models; FINN needs one bitstream
//    per model (four instances shown);
//  * NetPU-M is orders of magnitude slower than FINN-max but competitive
//    with FINN-fix on binarized models while drawing the least power.
#include <cstdio>

#include "baseline/finn.hpp"
#include "engine/accelerator.hpp"
#include "hw/power_model.hpp"
#include "nn/model_zoo.hpp"
#include "serve/driver.hpp"

using namespace netpu;

namespace {

struct Cell {
  const char* model;
  nn::ModelVariant variant;
  double paper_us;
  double paper_w;
};

}  // namespace

int main() {
  const auto config = core::NetpuConfig::paper_instance();
  core::Accelerator acc(config);
  serve::Driver driver(acc);
  common::Xoshiro256 rng(99);

  std::printf("Table VI: NetPU-M vs FINN\n\n");

  const auto res = acc.resources();
  std::printf("NetPU-M instance (Ultra96-V2 @ %.0f MHz): %ld LUT, %.1f BRAM, "
              "%ld DSP  (paper: 66494 LUT, 126.5 BRAM, 256 DSP)\n\n",
              config.clock_mhz, res.luts, res.bram36, res.dsps);

  hw::PowerParams netpu_power{hw::kUltra96StaticWatts, 0.45, config.clock_mhz};
  const double netpu_w = hw::estimate_power_watts(res, netpu_power);

  const Cell cells[] = {
      {"TFC", {nn::Topology::kTfc, 1, 1}, 44.64, 6.94},
      {"TFC", {nn::Topology::kTfc, 2, 2}, 178.18, 7.05},
      {"SFC", {nn::Topology::kSfc, 1, 1}, 139.75, 6.86},
      {"SFC", {nn::Topology::kSfc, 2, 2}, 888.0, 6.90},
      {"LFC", {nn::Topology::kLfc, 1, 1}, 980.63, 6.99},
      {"LFC", {nn::Topology::kLfc, 1, 2}, 7414.13, 6.88},
  };

  std::printf("%-6s %-10s | %12s %12s | %9s %9s\n", "Model", "Precision",
              "ours (us)", "paper (us)", "ours (W)", "paper (W)");
  for (const auto& cell : cells) {
    const auto mlp = nn::make_random_quantized_model(cell.variant,
                                                     /*bn_fold=*/true, rng);
    std::vector<std::uint8_t> image(mlp.input_size());
    for (auto& p : image) p = static_cast<std::uint8_t>(rng.next_below(256));
    auto m = driver.infer(mlp, image);
    if (!m.ok()) {
      std::fprintf(stderr, "inference failed: %s\n", m.error().to_string().c_str());
      return 1;
    }
    std::printf("%-6s w%da%d       | %12.2f %12.2f | %9.2f %9.2f\n", cell.model,
                cell.variant.weight_bits, cell.variant.activation_bits,
                m.value().measured_us, cell.paper_us, netpu_w, cell.paper_w);
  }

  std::printf("\nFINN instances (published configuration, our MVTU fold model):\n");
  std::printf("%-14s | %7s %6s | %14s %14s | %9s %9s\n", "Instance", "LUT",
              "BRAM", "model lat (us)", "paper lat (us)", "model W", "paper W");
  for (const auto& inst : baseline::table6_instances()) {
    std::printf("%-14s | %7ld %6.1f | %14.2f %14.2f | %9.2f %9.2f\n",
                inst.name.c_str(), inst.published.luts, inst.published.bram36,
                inst.model_latency_us(), inst.published_latency_us,
                inst.model_power_w(), inst.published_power_w);
  }

  std::printf("\nShape checks:\n");
  const double netpu_sfc_w1a1 = [&] {
    const auto mlp = nn::make_random_quantized_model({nn::Topology::kSfc, 1, 1},
                                                     true, rng);
    std::vector<std::uint8_t> image(mlp.input_size(), 128);
    return driver.infer(mlp, image).value().measured_us;
  }();
  const auto sfc_max = baseline::sfc_max();
  const auto sfc_fix = baseline::sfc_fix();
  std::printf("  FINN-max >> NetPU-M on latency:  %s (%.2f vs %.2f us)\n",
              sfc_max.published_latency_us < netpu_sfc_w1a1 / 50.0 ? "yes" : "NO",
              sfc_max.published_latency_us, netpu_sfc_w1a1);
  std::printf("  NetPU-M faster than SFC-fix:     %s (%.2f vs %.2f us)\n",
              netpu_sfc_w1a1 < sfc_fix.published_latency_us ? "yes" : "NO",
              netpu_sfc_w1a1, sfc_fix.published_latency_us);
  std::printf("  NetPU-M draws the least power:   %s (%.2f W vs %.2f W fix)\n",
              netpu_w < sfc_fix.model_power_w() ? "yes" : "NO", netpu_w,
              sfc_fix.model_power_w());
  std::printf("  one bitstream serves all six models: yes (no regeneration)\n");
  return 0;
}
