// Google-benchmark micro-benchmarks: datapath primitive throughput, golden
// inference, loadable compilation, and cycle-simulation speed.
#include <benchmark/benchmark.h>

#include "common/prng.hpp"
#include "core/accelerator.hpp"
#include "hw/activation_unit.hpp"
#include "hw/multiplier.hpp"
#include "loadable/compiler.hpp"
#include "nn/model_zoo.hpp"

using namespace netpu;

namespace {

void BM_WordDotBinary(benchmark::State& state) {
  common::Xoshiro256 rng(1);
  const Word a = rng.next(), w = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::word_dot(a, w, {1, true}, {1, true}, 64));
  }
}
BENCHMARK(BM_WordDotBinary);

void BM_WordDotInteger(benchmark::State& state) {
  common::Xoshiro256 rng(2);
  const Word a = rng.next(), w = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::word_dot(a, w, {8, true}, {8, true}, 8));
  }
}
BENCHMARK(BM_WordDotInteger);

void BM_SigmoidPwl(benchmark::State& state) {
  std::int64_t raw = -300;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::sigmoid_pwl(common::Q32x5(raw)));
    raw = raw >= 300 ? -300 : raw + 7;
  }
}
BENCHMARK(BM_SigmoidPwl);

void BM_QuanTransform(benchmark::State& state) {
  const auto scale = common::Q16x16::from_double(0.37);
  const auto offset = common::Q16x16::from_double(1.2);
  std::int64_t raw = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        common::quan_transform(common::Q32x5(raw), scale, offset, 4, false));
    raw += 31;
  }
}
BENCHMARK(BM_QuanTransform);

void BM_GoldenInferTfc(benchmark::State& state) {
  common::Xoshiro256 rng(3);
  const auto mlp = nn::make_random_quantized_model({nn::Topology::kTfc, 2, 2},
                                                   true, rng);
  std::vector<std::uint8_t> image(mlp.input_size());
  for (auto& p : image) p = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.infer(image).predicted);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoldenInferTfc);

void BM_CompileTfc(benchmark::State& state) {
  common::Xoshiro256 rng(4);
  const auto mlp = nn::make_random_quantized_model({nn::Topology::kTfc, 2, 2},
                                                   true, rng);
  std::vector<std::uint8_t> image(mlp.input_size(), 100);
  for (auto _ : state) {
    auto stream = loadable::compile(mlp, image, {});
    benchmark::DoNotOptimize(stream.value().size());
  }
}
BENCHMARK(BM_CompileTfc);

void BM_CycleSimTfcW1A1(benchmark::State& state) {
  common::Xoshiro256 rng(5);
  core::Accelerator acc(core::NetpuConfig::paper_instance());
  const auto mlp = nn::make_random_quantized_model({nn::Topology::kTfc, 1, 1},
                                                   true, rng);
  std::vector<std::uint8_t> image(mlp.input_size(), 77);
  auto stream = loadable::compile(mlp, image, acc.config().compile_options());
  Cycle cycles = 0;
  for (auto _ : state) {
    auto run = acc.run(stream.value());
    cycles = run.value().cycles;
    benchmark::DoNotOptimize(run.value().predicted);
  }
  state.counters["sim_cycles"] = static_cast<double>(cycles);
  state.counters["cycles_per_sec"] = benchmark::Counter(
      static_cast<double>(cycles) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CycleSimTfcW1A1)->Unit(benchmark::kMillisecond);

void BM_FunctionalRunTfc(benchmark::State& state) {
  common::Xoshiro256 rng(6);
  core::Accelerator acc(core::NetpuConfig::paper_instance());
  const auto mlp = nn::make_random_quantized_model({nn::Topology::kTfc, 2, 2},
                                                   true, rng);
  std::vector<std::uint8_t> image(mlp.input_size(), 42);
  auto stream = loadable::compile(mlp, image, acc.config().compile_options());
  core::RunOptions opts;
  opts.mode = core::RunMode::kFunctional;
  for (auto _ : state) {
    auto run = acc.run(stream.value(), opts);
    benchmark::DoNotOptimize(run.value().predicted);
  }
}
BENCHMARK(BM_FunctionalRunTfc)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
