// Google-benchmark micro-benchmarks: datapath primitive throughput, golden
// inference, loadable compilation, and cycle-simulation speed.
//
// `bench_micro --kernels-json PATH` skips the google-benchmark suite and
// instead emits BENCH_kernels.json: the SIMD-vs-scalar row-dot speedup, the
// event-vs-tick scheduler speedup on a stall-heavy DMA co-simulation, and
// the warm-path allocation count of the fast-backend serve loop.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <new>

#include "common/prng.hpp"
#include "engine/accelerator.hpp"
#include "core/fast_executor.hpp"
#include "hw/activation_unit.hpp"
#include "hw/kernels.hpp"
#include "hw/multiplier.hpp"
#include "loadable/compiler.hpp"
#include "loadable/words.hpp"
#include "nn/model_zoo.hpp"
#include "runtime/axi_dma.hpp"

using namespace netpu;

namespace {

void BM_WordDotBinary(benchmark::State& state) {
  common::Xoshiro256 rng(1);
  const Word a = rng.next(), w = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::word_dot(a, w, {1, true}, {1, true}, 64));
  }
}
BENCHMARK(BM_WordDotBinary);

void BM_WordDotInteger(benchmark::State& state) {
  common::Xoshiro256 rng(2);
  const Word a = rng.next(), w = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::word_dot(a, w, {8, true}, {8, true}, 8));
  }
}
BENCHMARK(BM_WordDotInteger);

void BM_SigmoidPwl(benchmark::State& state) {
  std::int64_t raw = -300;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::sigmoid_pwl(common::Q32x5(raw)));
    raw = raw >= 300 ? -300 : raw + 7;
  }
}
BENCHMARK(BM_SigmoidPwl);

void BM_QuanTransform(benchmark::State& state) {
  const auto scale = common::Q16x16::from_double(0.37);
  const auto offset = common::Q16x16::from_double(1.2);
  std::int64_t raw = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        common::quan_transform(common::Q32x5(raw), scale, offset, 4, false));
    raw += 31;
  }
}
BENCHMARK(BM_QuanTransform);

void BM_GoldenInferTfc(benchmark::State& state) {
  common::Xoshiro256 rng(3);
  const auto mlp = nn::make_random_quantized_model({nn::Topology::kTfc, 2, 2},
                                                   true, rng);
  std::vector<std::uint8_t> image(mlp.input_size());
  for (auto& p : image) p = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.infer(image).predicted);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoldenInferTfc);

void BM_CompileTfc(benchmark::State& state) {
  common::Xoshiro256 rng(4);
  const auto mlp = nn::make_random_quantized_model({nn::Topology::kTfc, 2, 2},
                                                   true, rng);
  std::vector<std::uint8_t> image(mlp.input_size(), 100);
  for (auto _ : state) {
    auto stream = loadable::compile(mlp, image, {});
    benchmark::DoNotOptimize(stream.value().size());
  }
}
BENCHMARK(BM_CompileTfc);

void BM_CycleSimTfcW1A1(benchmark::State& state) {
  common::Xoshiro256 rng(5);
  core::Accelerator acc(core::NetpuConfig::paper_instance());
  const auto mlp = nn::make_random_quantized_model({nn::Topology::kTfc, 1, 1},
                                                   true, rng);
  std::vector<std::uint8_t> image(mlp.input_size(), 77);
  auto stream = loadable::compile(mlp, image, acc.config().compile_options());
  Cycle cycles = 0;
  for (auto _ : state) {
    auto run = acc.run(stream.value());
    cycles = run.value().cycles;
    benchmark::DoNotOptimize(run.value().predicted);
  }
  state.counters["sim_cycles"] = static_cast<double>(cycles);
  state.counters["cycles_per_sec"] = benchmark::Counter(
      static_cast<double>(cycles) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CycleSimTfcW1A1)->Unit(benchmark::kMillisecond);

void BM_FunctionalRunTfc(benchmark::State& state) {
  common::Xoshiro256 rng(6);
  core::Accelerator acc(core::NetpuConfig::paper_instance());
  const auto mlp = nn::make_random_quantized_model({nn::Topology::kTfc, 2, 2},
                                                   true, rng);
  std::vector<std::uint8_t> image(mlp.input_size(), 42);
  auto stream = loadable::compile(mlp, image, acc.config().compile_options());
  core::RunOptions opts;
  opts.mode = core::RunMode::kFunctional;
  for (auto _ : state) {
    auto run = acc.run(stream.value(), opts);
    benchmark::DoNotOptimize(run.value().predicted);
  }
}
BENCHMARK(BM_FunctionalRunTfc)->Unit(benchmark::kMicrosecond);

}  // namespace

// --- Allocation instrumentation for the --kernels-json hot-path probe. ----

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

// Median-of-3 wall-clock of one callable.
template <typename F>
double time_best_of_3(F&& f) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = SteadyClock::now();
    f();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

// ns/row for one kernel table on a w1a1 (binary) row of `values` channels.
double binary_row_ns(const hw::kernels::Dispatch& d, int values, int iters) {
  common::Xoshiro256 rng(11);
  std::vector<std::int32_t> a_codes(static_cast<std::size_t>(values));
  std::vector<std::int32_t> w_codes(static_cast<std::size_t>(values));
  for (auto& c : a_codes) c = rng.next_below(2) == 0 ? -1 : 1;
  for (auto& c : w_codes) c = rng.next_below(2) == 0 ? -1 : 1;
  const auto a = loadable::pack_codes(a_codes, {1, true});
  const auto w = loadable::pack_codes(w_codes, {1, true});
  std::int64_t sink = 0;
  const double secs = time_best_of_3([&] {
    for (int i = 0; i < iters; ++i) {
      sink += d.dot_binary(a.data(), w.data(), a.size(), values);
    }
  });
  benchmark::DoNotOptimize(sink);
  return secs * 1e9 / iters;
}

// Wall-clock seconds of one stall-heavy DMA co-simulation (slow descriptor
// setup, short bursts, long inter-burst gaps: the scheduler spends most
// cycles in quiescent spans the event core jumps over).
double stall_heavy_cosim_seconds(const char* sched_mode, Cycle* cycles_out) {
  common::Xoshiro256 rng(12);
  const auto mlp = nn::make_random_quantized_model({nn::Topology::kTfc, 1, 1},
                                                   true, rng);
  std::vector<std::uint8_t> image(mlp.input_size(), 77);
  const auto config = core::NetpuConfig::paper_instance();
  auto stream = loadable::compile(mlp, image, config.compile_options());
  runtime::AxiDmaTimings timings;
  timings.setup_cycles = 20'000;
  timings.burst_beats = 16;
  timings.inter_burst_gap = 256;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded tool mode.
  setenv("NETPU_SCHED", sched_mode, 1);
  const double secs = time_best_of_3([&] {
    auto run = runtime::cosimulate(config, stream.value(), timings);
    if (run.ok() && cycles_out != nullptr) *cycles_out = run.value().cycles;
  });
  // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded tool mode.
  unsetenv("NETPU_SCHED");
  return secs;
}

// Warm-path allocation count of FastExecutor::run_into over `requests`.
std::uint64_t warm_hot_path_allocations(int requests) {
  common::Xoshiro256 rng(13);
  nn::RandomMlpSpec spec;
  spec.input_size = 96;
  spec.hidden = {64, 64};
  spec.outputs = 10;
  spec.weight_bits = 4;
  spec.activation_bits = 4;
  auto mlp = nn::random_quantized_mlp(spec, rng);
  core::NetpuConfig config;
  config.softmax_unit = true;
  auto fast = core::FastExecutor::create(std::move(mlp), config);
  if (!fast.ok()) return ~std::uint64_t{0};
  std::vector<std::uint8_t> image(96, 120);
  core::FastExecutor::Scratch scratch;
  core::RunResult result;
  for (int i = 0; i < 2; ++i) {
    (void)fast.value().run_into(image, true, scratch, result);
  }
  g_allocs.store(0);
  g_count_allocs.store(true);
  for (int i = 0; i < requests; ++i) {
    (void)fast.value().run_into(image, true, scratch, result);
  }
  g_count_allocs.store(false);
  return g_allocs.load();
}

int emit_kernels_json(const char* path) {
  constexpr int kRowValues = 4096;  // 64-word w1a1 rows
  constexpr int kIters = 200'000;
  const double scalar_ns =
      binary_row_ns(hw::kernels::scalar(), kRowValues, kIters);
  const hw::kernels::Dispatch* simd = hw::kernels::avx2();
  const double simd_ns =
      simd != nullptr ? binary_row_ns(*simd, kRowValues, kIters) : scalar_ns;

  Cycle cosim_cycles = 0;
  const double tick_secs = stall_heavy_cosim_seconds("tick", &cosim_cycles);
  const double event_secs = stall_heavy_cosim_seconds("event", nullptr);

  constexpr int kRequests = 256;
  const std::uint64_t allocs = warm_hot_path_allocations(kRequests);

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"w1a1_row_dot\": {\"row_values\": %d, \"scalar_ns_per_row\":"
               " %.2f, \"simd_ns_per_row\": %.2f, \"simd_table\": \"%s\","
               " \"speedup\": %.2f},\n",
               kRowValues, scalar_ns, simd_ns,
               simd != nullptr ? simd->name : "scalar", scalar_ns / simd_ns);
  std::fprintf(f,
               "  \"stall_heavy_cosim\": {\"sim_cycles\": %llu, \"tick_s\":"
               " %.4f, \"event_s\": %.4f, \"speedup\": %.2f},\n",
               static_cast<unsigned long long>(cosim_cycles), tick_secs,
               event_secs, tick_secs / event_secs);
  std::fprintf(f,
               "  \"fast_serve_hot_path\": {\"requests\": %d,"
               " \"warm_run_into_allocations\": %llu}\n",
               kRequests, static_cast<unsigned long long>(allocs));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (w1a1 simd x%.2f, event sched x%.2f, %llu allocs)\n",
              path, scalar_ns / simd_ns, tick_secs / event_secs,
              static_cast<unsigned long long>(allocs));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kernels-json") == 0 && i + 1 < argc) {
      return emit_kernels_json(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
