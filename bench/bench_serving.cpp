// Serving benchmark: serial cold driver vs. session engine, execution
// backends, paced device pipelines, RPC overhead and SLO capacity.
//
// The serial baseline is the historical Driver::infer path — every request
// re-streams the fused loadable (weights included) and simulates from a
// fresh accelerator. The engine path loads the model stream once into a
// Session (one persistent context per thread), so per-request host traffic
// is the input stream only and the thread pool fans requests across
// contexts.
//
// Every latency row reports *measured* per-request wall latency (exact
// percentiles over the raw samples). An earlier revision summarized the
// modeled/simulated latency instead — identical for every request of a
// model, so each row degenerated to p50 == p99; the final row audit below
// keeps that bug from coming back.
//
// Host-parallel sections are core-aware: wall-clock thread scaling is a
// property of the host (nothing parallelizes on a 1-core container), so the
// thread sweep asserts scaling only when the host has >= 2 cores and the
// emitted JSON carries host_cores so consumers can tell. Device scaling is
// asserted unconditionally — the device sweep runs *paced* (each plan stage
// reserves its modeled microseconds of wall-clock device occupancy), which
// makes the measured throughput device-limited rather than host-limited:
// real wall scaling 1->2 devices must clear 1.5x next to the modeled 1.7x.
//
// The capacity section runs the canonical load::smoke_spec() search (shared
// with `netpu-loadgen capacity --smoke`) at 1 and 2 devices: binary-search
// the max sustainable req/s under a p99 SLO, then a validation probe at
// 0.6x capacity for stable latency metrics.
//
// The whole run is emitted as BENCH_serving.json (load::write_bench_json)
// and tools/bench_gate.py diffs it against the committed baseline.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "engine/accelerator.hpp"
#include "data/synthetic_mnist.hpp"
#include "engine/inference_engine.hpp"
#include "engine/session.hpp"
#include "load/bench_json.hpp"
#include "load/capacity.hpp"
#include "load/replay.hpp"
#include "loadable/compiler.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "nn/model_zoo.hpp"
#include "serve/driver.hpp"
#include "serve/server.hpp"
#include "serve/server_stats.hpp"

using namespace netpu;

namespace {

struct Pct {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Exact nearest-rank percentiles over the raw measured samples.
Pct exact_percentiles(std::vector<double> samples) {
  Pct pct;
  if (samples.empty()) return pct;
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double p) {
    const auto n = samples.size();
    const auto i = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(n - 1) + 0.5);
    return samples[std::min(i, n - 1)];
  };
  pct.p50 = at(50.0);
  pct.p95 = at(95.0);
  pct.p99 = at(99.0);
  return pct;
}

}  // namespace

int main() {
  common::Xoshiro256 rng(7);
  const nn::ModelVariant variant{nn::Topology::kSfc, 1, 1};  // SFC-w1a1
  const auto mlp = nn::make_random_quantized_model(variant, true, rng);
  const auto dataset = data::make_synthetic_mnist(64, 11);

  std::vector<std::vector<std::uint8_t>> images;
  images.reserve(dataset.images.size());
  for (const auto& img : dataset.images) images.push_back(img);

  const auto config = core::NetpuConfig::paper_instance();
  const std::size_t host_cores = std::max(1u, std::thread::hardware_concurrency());

  std::printf("Serving %zu synthetic-MNIST images, %s on the paper instance "
              "(%zu host core%s):\n\n",
              images.size(), variant.name().c_str(), host_cores,
              host_cores == 1 ? "" : "s");

  // --- serial baseline: cold fused runs through the driver --------------
  core::Accelerator acc(config);
  serve::Driver driver(acc);
  Cycle cold_cycles = 0;
  std::vector<double> serial_us;
  const auto serial_start = std::chrono::steady_clock::now();
  for (const auto& image : images) {
    const auto t0 = std::chrono::steady_clock::now();
    auto m = driver.infer(mlp, image);
    if (!m.ok()) {
      std::fprintf(stderr, "serial inference failed: %s\n",
                   m.error().to_string().c_str());
      return 1;
    }
    serial_us.push_back(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
    cold_cycles = m.value().cycles;
  }
  const double serial_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serial_start)
          .count();
  const double serial_ips =
      serial_wall > 0.0 ? static_cast<double>(images.size()) / serial_wall : 0.0;
  const auto serial_pct = exact_percentiles(serial_us);

  std::vector<load::BenchRow> rows;
  rows.push_back({"driver", "serial cold", 1, serial_ips, serial_pct.p50,
                  serial_pct.p99, 0.0, 0.0});

  // Host traffic per request, both ways.
  auto model_stream = loadable::compile_model(mlp, config.compile_options());
  if (!model_stream.ok()) return 1;
  const auto first = loadable::LayerSetting::from_layer(mlp.layers.front());
  const std::size_t fused_words =
      loadable::model_size_words(mlp) + loadable::input_size_words(first) - 2;
  const std::size_t input_words = loadable::input_size_words(first);

  std::printf("%-22s %12s %12s %10s %9s %9s %9s\n", "path", "images/s",
              "speedup", "host w/req", "p50 us", "p95 us", "p99 us");
  std::printf("%-22s %12.1f %12s %10zu %9.2f %9.2f %9.2f\n",
              "serial driver (cold)", serial_ips, "1.00x", fused_words,
              serial_pct.p50, serial_pct.p95, serial_pct.p99);

  // --- engine: warm resident contexts, 1/2/4/8 threads ------------------
  // Wall-clock thread scaling is host parallelism: each request's
  // simulation is single-threaded and CPU-bound, so N threads only help
  // when the host has N cores. The scaling assertion is therefore gated on
  // host_cores >= 2 — on a 1-core box the flat numbers are the *correct*
  // measurement, not a serving bug, and asserting on them would be testing
  // the container, not the code.
  Cycle warm_cycles = 0;
  double ips_one_thread = 0.0, ips_two_threads = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    auto session = engine::Session::create(config, {.contexts = threads});
    if (!session.ok()) return 1;
    if (auto s = session.value().load_model(mlp); !s.ok()) {
      std::fprintf(stderr, "model load failed: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
    engine::InferenceEngine eng(session.value(), threads);
    auto batch = eng.run_batch(images);
    if (!batch.ok()) {
      std::fprintf(stderr, "run_batch failed: %s\n",
                   batch.error().to_string().c_str());
      return 1;
    }
    const auto& stats = batch.value().stats;
    warm_cycles = batch.value().results.front().cycles;
    if (threads == 1) ips_one_thread = stats.images_per_second;
    if (threads == 2) ips_two_threads = stats.images_per_second;
    const auto pct = exact_percentiles(batch.value().wall_us);
    char label[64];
    std::snprintf(label, sizeof label, "engine, %zu thread%s", threads,
                  threads == 1 ? "" : "s");
    std::printf("%-22s %12.1f %11.2fx %10zu %9.2f %9.2f %9.2f\n", label,
                stats.images_per_second,
                serial_ips > 0.0 ? stats.images_per_second / serial_ips : 0.0,
                input_words, pct.p50, pct.p95, pct.p99);
    rows.push_back({"engine_threads", label, 1, stats.images_per_second,
                    pct.p50, pct.p99, 0.0, 0.0});
  }
  if (host_cores >= 2) {
    if (ips_two_threads < 1.25 * ips_one_thread) {
      std::fprintf(stderr,
                   "FAIL: %zu-core host, but 2 engine threads gave %.1f "
                   "images/s vs %.1f at 1 thread (< 1.25x)\n",
                   host_cores, ips_two_threads, ips_one_thread);
      return 1;
    }
    std::printf("thread scaling 1->2: %.2fx on %zu cores (>=1.25x required)\n",
                ips_one_thread > 0.0 ? ips_two_threads / ips_one_thread : 0.0,
                host_cores);
  } else {
    std::printf("thread scaling not asserted: 1 host core, nothing to "
                "parallelize (device scaling is asserted below instead)\n");
  }

  // --- execution backends: cycle sim vs. functional fast path -----------
  // Same engine, same 4-thread fan-out; only RunOptions::backend changes.
  // The fast path must stay bit-identical to the simulator while clearing
  // the >=5x images/s bar (it skips FIFO ticking entirely, so in practice
  // the margin is orders of magnitude).
  std::printf("\nexecution backends (engine, 4 threads):\n");
  std::printf("%-26s %12s %12s %14s\n", "backend", "images/s", "speedup",
              "cycles/req");
  auto session = engine::Session::create(config, {.contexts = 4});
  if (!session.ok()) return 1;
  if (!session.value().load_model(mlp).ok()) return 1;
  engine::InferenceEngine eng(session.value(), 4);

  double cycle_ips = 0.0, fast_ips = 0.0;
  std::vector<std::size_t> cycle_predictions;
  for (const auto backend : {core::Backend::kCycle, core::Backend::kFast,
                             core::Backend::kFastLatencyModel}) {
    core::RunOptions options;
    options.backend = backend;
    auto batch = eng.run_batch(images, options);
    if (!batch.ok()) {
      std::fprintf(stderr, "backend %s failed: %s\n", core::to_string(backend),
                   batch.error().to_string().c_str());
      return 1;
    }
    const auto& results = batch.value().results;
    if (backend == core::Backend::kCycle) {
      cycle_ips = batch.value().stats.images_per_second;
      cycle_predictions.reserve(results.size());
      for (const auto& r : results) cycle_predictions.push_back(r.predicted);
    } else {
      if (backend == core::Backend::kFast) {
        fast_ips = batch.value().stats.images_per_second;
      }
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].predicted != cycle_predictions[i]) {
          std::fprintf(stderr,
                       "BACKEND MISMATCH: %s predicted %zu, cycle %zu (image %zu)\n",
                       core::to_string(backend), results[i].predicted,
                       cycle_predictions[i], i);
          return 1;
        }
      }
    }
    std::printf("%-26s %12.1f %11.2fx %14llu\n", core::to_string(backend),
                batch.value().stats.images_per_second,
                cycle_ips > 0.0
                    ? batch.value().stats.images_per_second / cycle_ips
                    : 0.0,
                static_cast<unsigned long long>(results.front().cycles));
    const auto pct = exact_percentiles(batch.value().wall_us);
    rows.push_back({"backend", core::to_string(backend), 1,
                    batch.value().stats.images_per_second, pct.p50, pct.p99,
                    0.0, 0.0});
  }
  if (fast_ips < 5.0 * cycle_ips) {
    std::fprintf(stderr,
                 "FAIL: fast backend %.1f images/s < 5x cycle backend %.1f\n",
                 fast_ips, cycle_ips);
    return 1;
  }
  std::printf(
      "fast backend: %.1fx the cycle simulator, predictions bit-identical "
      "(>=5x required)\n",
      cycle_ips > 0.0 ? fast_ips / cycle_ips : 0.0);

  // --- device sweep: paced layer-pipeline execution plans ---------------
  // TFC-w1a1: its per-layer time profile splits evenly enough that the
  // greedy stage assignment balances a two-stage pipeline, and the modeled
  // 1->2 scaling must clear 1.7x. The sweep runs *paced*: every plan stage
  // reserves its modeled microseconds of exclusive wall-clock occupancy on
  // its device, so the measured images/s is bounded by device capacity, not
  // by how fast this host grinds the (identical either way) kernel
  // arithmetic — which is what let an earlier revision report 67k -> 72k
  // "real" images/s from 1 -> 2 devices while modeling 1.8x. With pacing,
  // real wall scaling is asserted >= 1.5x next to the modeled >= 1.7x, and
  // predictions stay device-count invariant.
  const nn::ModelVariant sweep_variant{nn::Topology::kTfc, 1, 1};
  const auto sweep_mlp =
      nn::make_random_quantized_model(sweep_variant, true, rng);
  std::vector<std::vector<std::uint8_t>> sweep_images;
  sweep_images.reserve(images.size() * 8);
  for (int rep = 0; rep < 8; ++rep) {
    for (const auto& img : images) sweep_images.push_back(img);
  }
  std::printf("\ndevice sweep (%s, engine, fast-latency backend, paced, %zu "
              "requests):\n",
              sweep_variant.name().c_str(), sweep_images.size());
  std::printf("%-10s %14s %16s %10s %10s %10s %10s\n", "devices", "wall img/s",
              "modeled img/s", "modeled x", "real x", "p50 us", "p99 us");
  double modeled_one = 0.0, modeled_two = 0.0;
  double real_one = 0.0, real_two = 0.0;
  std::vector<std::size_t> single_device_predictions;
  for (const std::size_t d : {1u, 2u, 3u, 4u}) {
    // 16 in-flight requests: host sleep/wake latency is ~100-200 us per
    // paced stage on a small container, so fewer threads cannot offer
    // enough load to saturate two devices' modeled capacity and the sweep
    // would measure the host again (see the pacing note above).
    auto sweep_session =
        engine::Session::create(config, {.contexts = 16, .devices = d});
    if (!sweep_session.ok()) return 1;
    if (auto s = sweep_session.value().load_model(sweep_mlp); !s.ok()) {
      std::fprintf(stderr, "sweep model load failed: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
    engine::InferenceEngine sweep_eng(sweep_session.value(), 16);
    core::RunOptions options;
    options.backend = core::Backend::kFastLatencyModel;
    options.pace_devices = true;
    auto batch = sweep_eng.run_batch(sweep_images, options);
    if (!batch.ok()) {
      std::fprintf(stderr, "device sweep (%zu devices) failed: %s\n", d,
                   batch.error().to_string().c_str());
      return 1;
    }
    const auto& results = batch.value().results;
    if (d == 1) {
      single_device_predictions.reserve(results.size());
      for (const auto& r : results) {
        single_device_predictions.push_back(r.predicted);
      }
    } else {
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].predicted != single_device_predictions[i]) {
          std::fprintf(
              stderr,
              "DEVICE MISMATCH: %zu devices predicted %zu, one device %zu "
              "(image %zu)\n",
              d, results[i].predicted, single_device_predictions[i], i);
          return 1;
        }
      }
    }
    const double modeled =
        sweep_session.value().plan().modeled_throughput_images_per_s();
    const double wall_ips = batch.value().stats.images_per_second;
    if (d == 1) { modeled_one = modeled; real_one = wall_ips; }
    if (d == 2) { modeled_two = modeled; real_two = wall_ips; }
    const auto pct = exact_percentiles(batch.value().wall_us);
    std::printf("%-10zu %14.1f %16.1f %9.2fx %9.2fx %10.2f %10.2f\n", d,
                wall_ips, modeled,
                modeled_one > 0.0 ? modeled / modeled_one : 0.0,
                real_one > 0.0 ? wall_ips / real_one : 0.0, pct.p50, pct.p99);
    rows.push_back({"device_sweep", std::to_string(d) + " device(s)", d,
                    wall_ips, pct.p50, pct.p99, modeled, 0.0});
  }
  const double scaling = modeled_one > 0.0 ? modeled_two / modeled_one : 0.0;
  const double real_scaling = real_one > 0.0 ? real_two / real_one : 0.0;
  if (scaling < 1.7) {
    std::fprintf(stderr,
                 "FAIL: modeled pipeline scaling 1->2 devices %.2fx < 1.7x\n",
                 scaling);
    return 1;
  }
  if (real_scaling < 1.5) {
    std::fprintf(stderr,
                 "FAIL: real (paced wall-clock) scaling 1->2 devices %.2fx "
                 "< 1.5x\n",
                 real_scaling);
    return 1;
  }
  std::printf(
      "pipeline 1->2 devices: %.2fx modeled (>=1.7x required), %.2fx real "
      "paced wall-clock (>=1.5x required), predictions device-count "
      "invariant\n",
      scaling, real_scaling);

  // --- RPC overhead: in-process submission vs. the loopback socket ------
  // Same serving stack (queue -> batcher -> registry -> engine, fast
  // backend so transport cost is not hidden under simulation time), same
  // closed-loop client count; the only difference is whether requests enter
  // through serve::Server::submit or through the network front door
  // (NPWF frames over a loopback TCP socket, 4-connection client pool).
  {
    serve::ModelRegistry rpc_registry(config,
                                      {.resident_cap = 1, .contexts_per_model = 4});
    if (auto s = rpc_registry.add_model("m", mlp); !s.ok()) {
      std::fprintf(stderr, "rpc model load failed: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
    serve::ServerOptions rpc_server_options;
    rpc_server_options.dispatch_threads = 4;
    rpc_server_options.run_options.backend = core::Backend::kFast;
    serve::Server rpc_server(rpc_registry, rpc_server_options);
    rpc_server.start();

    const std::size_t rpc_clients = 4;
    const std::size_t rpc_requests = 4 * images.size();

    // In-process closed loop.
    std::vector<double> local_us(rpc_requests, 0.0);
    std::atomic<std::size_t> cursor{0};
    const auto local_start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> threads;
      for (std::size_t t = 0; t < rpc_clients; ++t) {
        threads.emplace_back([&] {
          for (;;) {
            const std::size_t i = cursor.fetch_add(1);
            if (i >= rpc_requests) return;
            const auto t0 = std::chrono::steady_clock::now();
            auto h = rpc_server.submit("m", images[i % images.size()]);
            if (!h.ok() || !h.value().wait().ok()) std::abort();
            local_us[i] = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    const double local_wall = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - local_start)
                                  .count();
    const double local_ips =
        local_wall > 0.0 ? static_cast<double>(rpc_requests) / local_wall : 0.0;
    const auto local_pct = exact_percentiles(local_us);

    // Loopback socket closed loop: identical load through the front door.
    net::NetServer net_server(rpc_server, {});
    if (!net_server.start().ok()) {
      std::fprintf(stderr, "net server start failed\n");
      return 1;
    }
    net::ClientPoolOptions pool_options;
    pool_options.client.port = net_server.port();
    pool_options.connections = rpc_clients;
    auto pool = net::ClientPool::connect(pool_options);
    if (!pool.ok()) {
      std::fprintf(stderr, "client pool connect failed: %s\n",
                   pool.error().to_string().c_str());
      return 1;
    }
    std::vector<std::vector<Word>> rpc_streams;
    rpc_streams.reserve(images.size());
    for (const auto& image : images) {
      auto words = loadable::compile_input(first, image);
      if (!words.ok()) return 1;
      rpc_streams.push_back(std::move(words).value());
    }
    std::vector<double> remote_us(rpc_requests, 0.0);
    cursor.store(0);
    const auto remote_start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> threads;
      for (std::size_t t = 0; t < rpc_clients; ++t) {
        threads.emplace_back([&] {
          for (;;) {
            const std::size_t i = cursor.fetch_add(1);
            if (i >= rpc_requests) return;
            const auto t0 = std::chrono::steady_clock::now();
            auto r = pool.value()->infer("m", rpc_streams[i % images.size()]);
            if (!r.ok()) std::abort();
            remote_us[i] = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    const double remote_wall = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - remote_start)
                                   .count();
    const double remote_ips =
        remote_wall > 0.0 ? static_cast<double>(rpc_requests) / remote_wall : 0.0;
    const auto remote_pct = exact_percentiles(remote_us);
    net_server.stop();
    rpc_server.stop();

    std::printf("\nrpc overhead (%zu requests, %zu closed-loop clients, fast "
                "backend):\n",
                rpc_requests, rpc_clients);
    std::printf("%-22s %12s %10s %10s\n", "path", "images/s", "p50 us", "p99 us");
    std::printf("%-22s %12.1f %10.2f %10.2f\n", "in-process submit", local_ips,
                local_pct.p50, local_pct.p99);
    std::printf("%-22s %12.1f %10.2f %10.2f\n", "loopback socket", remote_ips,
                remote_pct.p50, remote_pct.p99);
    std::printf("loopback retains %.0f%% of in-process throughput; p50 adds "
                "%.1f us of wire + framing\n",
                local_ips > 0.0 ? 100.0 * remote_ips / local_ips : 0.0,
                remote_pct.p50 - local_pct.p50);
    rows.push_back({"rpc", "in-process submit", 1, local_ips, local_pct.p50,
                    local_pct.p99, 0.0, 0.0});
    rows.push_back({"rpc", "loopback socket", 1, remote_ips, remote_pct.p50,
                    remote_pct.p99, 0.0, 0.0});
  }

  // --- capacity under SLO: the canonical smoke search, 1 and 2 devices --
  // load::smoke_spec() is shared verbatim with `netpu-loadgen capacity
  // --smoke`, so these rows are the committed baseline the capacity_smoke
  // ctest gate diffs fresh runs against. Paced fast execution: the knee
  // tracks modeled device capacity, stable across hosts.
  double capacity_one = 0.0, capacity_two = 0.0;
  {
    const auto spec = load::smoke_spec();
    std::printf("\ncapacity under SLO (p99 <= %.0f us, success >= %.2f, %s, "
                "paced fast backend):\n",
                spec.slo.p99_us, spec.slo.min_success, spec.model.c_str());
    std::printf("%-10s %14s %14s %12s %10s\n", "devices", "capacity rq/s",
                "probe rq/s", "p50 us", "p99 us");
    for (const std::size_t d : {1u, 2u}) {
      serve::RegistryOptions registry_options;
      registry_options.resident_cap = 1;
      registry_options.contexts_per_model = spec.contexts;
      registry_options.devices = d;
      serve::ModelRegistry registry(config, registry_options);
      if (auto s = registry.add_model(spec.model, mlp); !s.ok()) {
        std::fprintf(stderr, "capacity model load failed: %s\n",
                     s.error().to_string().c_str());
        return 1;
      }
      serve::ServerOptions server_options;
      server_options.dispatch_threads = spec.dispatch_threads;
      server_options.policy.max_batch_size = spec.batch_size;
      server_options.policy.max_wait_us = spec.max_wait_us;
      server_options.queue_capacity = spec.queue_capacity;
      server_options.run_options.backend = core::Backend::kFast;
      server_options.run_options.pace_devices = true;
      serve::Server capacity_server(registry, server_options);
      capacity_server.start();
      load::ServerTarget target(capacity_server, images);
      const auto probe = load::make_probe(target, spec.plan);
      const auto m = load::measure_capacity(probe, spec.slo, spec.lo_rps,
                                            spec.hi_rps, spec.iterations);
      capacity_server.stop();
      if (m.search.capacity_rps <= 0.0) {
        std::fprintf(stderr, "FAIL: no feasible rate found at %zu device(s)\n",
                     d);
        return 1;
      }
      if (d == 1) capacity_one = m.search.capacity_rps;
      if (d == 2) capacity_two = m.search.capacity_rps;
      const auto& v = m.validation;
      std::printf("%-10zu %14.1f %14.1f %12.1f %10.1f\n", d,
                  m.search.capacity_rps, v.completed_rps, v.p50_us, v.p99_us);
      rows.push_back({"capacity", load::smoke_label(d), d, v.completed_rps,
                      v.p50_us, v.p99_us, 0.0, m.search.capacity_rps});
    }
    std::printf("SLO capacity 1->2 devices: %.2fx\n",
                capacity_one > 0.0 ? capacity_two / capacity_one : 0.0);
  }

  // --- row audit: percentiles must be real distributions ----------------
  // p99 < p50 is impossible from sorted samples (a sign the row was filled
  // from something else); p99 == p50 under contended open-loop or paced
  // load means the row regressed to summarizing a modeled constant — the
  // exact bug this bench used to have.
  for (const auto& r : rows) {
    if (r.p99_us < r.p50_us) {
      std::fprintf(stderr, "FAIL: %s/%s reports p99 %.2f < p50 %.2f\n",
                   r.section.c_str(), r.label.c_str(), r.p99_us, r.p50_us);
      return 1;
    }
    const bool contended = r.section == "device_sweep" ||
                           r.section == "capacity" || r.section == "rpc";
    if (contended && !(r.p99_us > r.p50_us)) {
      std::fprintf(stderr,
                   "FAIL: %s/%s reports p50 == p99 == %.2f under contended "
                   "load — latency collection is not per-request\n",
                   r.section.c_str(), r.label.c_str(), r.p50_us);
      return 1;
    }
  }

  std::printf(
      "\ncold fused run: %llu cycles/request; warm resident run: %llu "
      "cycles/request\n",
      static_cast<unsigned long long>(cold_cycles),
      static_cast<unsigned long long>(warm_cycles));
  std::printf(
      "model stream (%zu words) crosses the host link once per session; "
      "after that each request ships %zu input words instead of the %zu-word "
      "fused loadable.\n",
      model_stream.value().size(), input_words, fused_words);

  load::write_bench_json("BENCH_serving.json",
                         variant.name() + " + " + sweep_variant.name(),
                         images.size(), host_cores, rows, scaling);
  std::printf("wrote BENCH_serving.json (%zu rows)\n", rows.size());
  return 0;
}
