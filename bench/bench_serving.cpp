// Serving benchmark: serial cold driver vs. session engine.
//
// The serial baseline is the historical Driver::infer path — every request
// re-streams the fused loadable (weights included) and simulates from a
// fresh accelerator. The engine path loads the model stream once into a
// Session (one persistent context per thread), so per-request host traffic
// is the input stream only and the thread pool fans requests across
// contexts. Two effects show up:
//  * warm resident cycles < cold fused cycles (weight streaming leaves the
//    per-request critical path);
//  * simulator wall-clock throughput scales with threads (each request's
//    simulation is single-threaded and independent).
//
// Per-request model latency (simulated µs) feeds the serving-layer
// histogram, so each row also reports p50/p95/p99 alongside throughput.
//
// The final section sweeps --devices 1..4 (layer-pipeline execution plans)
// and the whole run is emitted as BENCH_serving.json — images/s and p50/p99
// per backend and per device count plus the plan's modeled pipeline
// throughput — so serving regressions diff as JSON. The modeled 1->2
// scaling on the swept zoo model is asserted >= 1.7x.
#include <atomic>
#include <cstdio>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/accelerator.hpp"
#include "data/synthetic_mnist.hpp"
#include "engine/inference_engine.hpp"
#include "engine/session.hpp"
#include "loadable/compiler.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "nn/model_zoo.hpp"
#include "runtime/driver.hpp"
#include "serve/server.hpp"
#include "serve/server_stats.hpp"

using namespace netpu;

namespace {

// One emitted measurement row (section/backends/devices discriminate).
struct BenchRow {
  std::string section;
  std::string label;
  std::size_t devices = 1;
  double images_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double modeled_images_per_s = 0.0;  // device sweep only
};

void write_json(const std::string& path, const std::string& model,
                std::size_t images, const std::vector<BenchRow>& rows,
                double pipeline_scaling_1_to_2) {
  std::ofstream f(path);
  f << "{\n  \"model\": \"" << model << "\",\n  \"images\": " << images
    << ",\n  \"pipeline_scaling_1_to_2\": " << pipeline_scaling_1_to_2
    << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    f << "    {\"section\": \"" << r.section << "\", \"label\": \"" << r.label
      << "\", \"devices\": " << r.devices
      << ", \"images_per_s\": " << r.images_per_s << ", \"p50_us\": " << r.p50_us
      << ", \"p99_us\": " << r.p99_us
      << ", \"modeled_images_per_s\": " << r.modeled_images_per_s << "}"
      << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
}

}  // namespace

int main() {
  common::Xoshiro256 rng(7);
  const nn::ModelVariant variant{nn::Topology::kSfc, 1, 1};  // SFC-w1a1
  const auto mlp = nn::make_random_quantized_model(variant, true, rng);
  const auto dataset = data::make_synthetic_mnist(64, 11);

  std::vector<std::vector<std::uint8_t>> images;
  images.reserve(dataset.images.size());
  for (const auto& img : dataset.images) images.push_back(img);

  const auto config = core::NetpuConfig::paper_instance();

  std::printf("Serving %zu synthetic-MNIST images, %s on the paper instance:\n\n",
              images.size(), variant.name().c_str());

  // --- serial baseline: cold fused runs through the driver --------------
  core::Accelerator acc(config);
  runtime::Driver driver(acc);
  Cycle cold_cycles = 0;
  serve::LatencyHistogram serial_latency;
  const auto serial_start = std::chrono::steady_clock::now();
  for (const auto& image : images) {
    auto m = driver.infer(mlp, image);
    if (!m.ok()) {
      std::fprintf(stderr, "serial inference failed: %s\n",
                   m.error().to_string().c_str());
      return 1;
    }
    cold_cycles = m.value().cycles;
    serial_latency.record(m.value().measured_us);
  }
  const double serial_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serial_start)
          .count();
  const double serial_ips =
      serial_wall > 0.0 ? static_cast<double>(images.size()) / serial_wall : 0.0;

  std::vector<BenchRow> rows;
  rows.push_back({"driver", "serial cold", 1, serial_ips, serial_latency.p50(),
                  serial_latency.p99(), 0.0});

  // Host traffic per request, both ways.
  auto model_stream = loadable::compile_model(mlp, config.compile_options());
  if (!model_stream.ok()) return 1;
  const auto first = loadable::LayerSetting::from_layer(mlp.layers.front());
  const std::size_t fused_words =
      loadable::model_size_words(mlp) + loadable::input_size_words(first) - 2;
  const std::size_t input_words = loadable::input_size_words(first);

  std::printf("%-22s %12s %12s %10s %9s %9s %9s\n", "path", "images/s",
              "speedup", "host w/req", "p50 us", "p95 us", "p99 us");
  std::printf("%-22s %12.1f %12s %10zu %9.2f %9.2f %9.2f\n",
              "serial driver (cold)", serial_ips, "1.00x", fused_words,
              serial_latency.p50(), serial_latency.p95(), serial_latency.p99());

  // --- engine: warm resident contexts, 1/2/4/8 threads ------------------
  Cycle warm_cycles = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    auto session = engine::Session::create(config, {.contexts = threads});
    if (!session.ok()) return 1;
    if (auto s = session.value().load_model(mlp); !s.ok()) {
      std::fprintf(stderr, "model load failed: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
    engine::InferenceEngine eng(session.value(), threads);
    auto batch = eng.run_batch(images);
    if (!batch.ok()) {
      std::fprintf(stderr, "run_batch failed: %s\n",
                   batch.error().to_string().c_str());
      return 1;
    }
    const auto& stats = batch.value().stats;
    warm_cycles = batch.value().results.front().cycles;
    serve::LatencyHistogram warm_latency;
    for (const auto& r : batch.value().results) {
      warm_latency.record(r.latency_us(config));
    }
    char label[64];
    std::snprintf(label, sizeof label, "engine, %zu thread%s", threads,
                  threads == 1 ? "" : "s");
    std::printf("%-22s %12.1f %11.2fx %10zu %9.2f %9.2f %9.2f\n", label,
                stats.images_per_second,
                serial_ips > 0.0 ? stats.images_per_second / serial_ips : 0.0,
                input_words, warm_latency.p50(), warm_latency.p95(),
                warm_latency.p99());
    rows.push_back({"engine_threads", label, 1, stats.images_per_second,
                    warm_latency.p50(), warm_latency.p99(), 0.0});
  }

  // --- execution backends: cycle sim vs. functional fast path -----------
  // Same engine, same 4-thread fan-out; only RunOptions::backend changes.
  // The fast path must stay bit-identical to the simulator while clearing
  // the >=5x images/s bar (it skips FIFO ticking entirely, so in practice
  // the margin is orders of magnitude).
  std::printf("\nexecution backends (engine, 4 threads):\n");
  std::printf("%-26s %12s %12s %14s\n", "backend", "images/s", "speedup",
              "cycles/req");
  auto session = engine::Session::create(config, {.contexts = 4});
  if (!session.ok()) return 1;
  if (!session.value().load_model(mlp).ok()) return 1;
  engine::InferenceEngine eng(session.value(), 4);

  double cycle_ips = 0.0, fast_ips = 0.0;
  std::vector<std::size_t> cycle_predictions;
  for (const auto backend : {core::Backend::kCycle, core::Backend::kFast,
                             core::Backend::kFastLatencyModel}) {
    core::RunOptions options;
    options.backend = backend;
    auto batch = eng.run_batch(images, options);
    if (!batch.ok()) {
      std::fprintf(stderr, "backend %s failed: %s\n", core::to_string(backend),
                   batch.error().to_string().c_str());
      return 1;
    }
    const auto& results = batch.value().results;
    if (backend == core::Backend::kCycle) {
      cycle_ips = batch.value().stats.images_per_second;
      cycle_predictions.reserve(results.size());
      for (const auto& r : results) cycle_predictions.push_back(r.predicted);
    } else {
      if (backend == core::Backend::kFast) {
        fast_ips = batch.value().stats.images_per_second;
      }
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].predicted != cycle_predictions[i]) {
          std::fprintf(stderr,
                       "BACKEND MISMATCH: %s predicted %zu, cycle %zu (image %zu)\n",
                       core::to_string(backend), results[i].predicted,
                       cycle_predictions[i], i);
          return 1;
        }
      }
    }
    std::printf("%-26s %12.1f %11.2fx %14llu\n", core::to_string(backend),
                batch.value().stats.images_per_second,
                cycle_ips > 0.0
                    ? batch.value().stats.images_per_second / cycle_ips
                    : 0.0,
                static_cast<unsigned long long>(results.front().cycles));
    serve::LatencyHistogram backend_latency;
    for (const auto& r : results) backend_latency.record(r.latency_us(config));
    rows.push_back({"backend", core::to_string(backend), 1,
                    batch.value().stats.images_per_second,
                    backend_latency.p50(), backend_latency.p99(), 0.0});
  }
  if (fast_ips < 5.0 * cycle_ips) {
    std::fprintf(stderr,
                 "FAIL: fast backend %.1f images/s < 5x cycle backend %.1f\n",
                 fast_ips, cycle_ips);
    return 1;
  }
  std::printf(
      "fast backend: %.1fx the cycle simulator, predictions bit-identical "
      "(>=5x required)\n",
      cycle_ips > 0.0 ? fast_ips / cycle_ips : 0.0);

  // --- device sweep: layer-pipeline execution plans ---------------------
  // TFC-w1a1: its per-layer time profile splits evenly enough that the
  // greedy stage assignment balances a two-stage pipeline, and the modeled
  // 1->2 scaling must clear 1.7x. Wall images/s barely moves (the fast
  // kernels do the same arithmetic either way) — the modeled pipeline
  // throughput is the figure of merit; the wall numbers and the
  // device-count-invariant predictions guard plan-execution overhead and
  // correctness.
  const nn::ModelVariant sweep_variant{nn::Topology::kTfc, 1, 1};
  const auto sweep_mlp =
      nn::make_random_quantized_model(sweep_variant, true, rng);
  std::printf("\ndevice sweep (%s, engine, fast-latency backend):\n",
              sweep_variant.name().c_str());
  std::printf("%-10s %14s %16s %10s %10s %10s\n", "devices", "wall img/s",
              "modeled img/s", "scaling", "p50 us", "p99 us");
  double modeled_one = 0.0, modeled_two = 0.0;
  std::vector<std::size_t> single_device_predictions;
  for (const std::size_t d : {1u, 2u, 3u, 4u}) {
    auto sweep_session =
        engine::Session::create(config, {.contexts = 2, .devices = d});
    if (!sweep_session.ok()) return 1;
    if (auto s = sweep_session.value().load_model(sweep_mlp); !s.ok()) {
      std::fprintf(stderr, "sweep model load failed: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
    engine::InferenceEngine sweep_eng(sweep_session.value(), 2);
    core::RunOptions options;
    options.backend = core::Backend::kFastLatencyModel;
    auto batch = sweep_eng.run_batch(images, options);
    if (!batch.ok()) {
      std::fprintf(stderr, "device sweep (%zu devices) failed: %s\n", d,
                   batch.error().to_string().c_str());
      return 1;
    }
    const auto& results = batch.value().results;
    if (d == 1) {
      single_device_predictions.reserve(results.size());
      for (const auto& r : results) {
        single_device_predictions.push_back(r.predicted);
      }
    } else {
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].predicted != single_device_predictions[i]) {
          std::fprintf(
              stderr,
              "DEVICE MISMATCH: %zu devices predicted %zu, one device %zu "
              "(image %zu)\n",
              d, results[i].predicted, single_device_predictions[i], i);
          return 1;
        }
      }
    }
    const double modeled =
        sweep_session.value().plan().modeled_throughput_images_per_s();
    if (d == 1) modeled_one = modeled;
    if (d == 2) modeled_two = modeled;
    serve::LatencyHistogram sweep_latency;
    for (const auto& r : results) sweep_latency.record(r.latency_us(config));
    std::printf("%-10zu %14.1f %16.1f %9.2fx %10.2f %10.2f\n", d,
                batch.value().stats.images_per_second, modeled,
                modeled_one > 0.0 ? modeled / modeled_one : 0.0,
                sweep_latency.p50(), sweep_latency.p99());
    rows.push_back({"device_sweep", std::to_string(d) + " device(s)", d,
                    batch.value().stats.images_per_second, sweep_latency.p50(),
                    sweep_latency.p99(), modeled});
  }
  const double scaling = modeled_one > 0.0 ? modeled_two / modeled_one : 0.0;
  if (scaling < 1.7) {
    std::fprintf(stderr,
                 "FAIL: modeled pipeline scaling 1->2 devices %.2fx < 1.7x\n",
                 scaling);
    return 1;
  }
  std::printf(
      "pipeline 1->2 devices: %.2fx modeled throughput (>=1.7x required), "
      "predictions device-count invariant\n",
      scaling);

  // --- RPC overhead: in-process submission vs. the loopback socket ------
  // Same serving stack (queue -> batcher -> registry -> engine, fast
  // backend so transport cost is not hidden under simulation time), same
  // closed-loop client count; the only difference is whether requests enter
  // through serve::Server::submit or through the network front door
  // (NPWF frames over a loopback TCP socket, 4-connection client pool).
  {
    serve::ModelRegistry rpc_registry(config,
                                      {.resident_cap = 1, .contexts_per_model = 4});
    if (auto s = rpc_registry.add_model("m", mlp); !s.ok()) {
      std::fprintf(stderr, "rpc model load failed: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
    serve::ServerOptions rpc_server_options;
    rpc_server_options.dispatch_threads = 4;
    rpc_server_options.run_options.backend = core::Backend::kFast;
    serve::Server rpc_server(rpc_registry, rpc_server_options);
    rpc_server.start();

    const std::size_t rpc_clients = 4;
    const std::size_t rpc_requests = 4 * images.size();

    // In-process closed loop.
    serve::LatencyHistogram local_latency;
    std::mutex local_latency_mutex;  // guards local_latency
    std::atomic<std::size_t> cursor{0};
    const auto local_start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> threads;
      for (std::size_t t = 0; t < rpc_clients; ++t) {
        threads.emplace_back([&] {
          for (;;) {
            const std::size_t i = cursor.fetch_add(1);
            if (i >= rpc_requests) return;
            const auto t0 = std::chrono::steady_clock::now();
            auto h = rpc_server.submit("m", images[i % images.size()]);
            if (!h.ok() || !h.value().wait().ok()) std::abort();
            const double us = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
            std::lock_guard<std::mutex> lock(local_latency_mutex);
            local_latency.record(us);
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    const double local_wall = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - local_start)
                                  .count();
    const double local_ips =
        local_wall > 0.0 ? static_cast<double>(rpc_requests) / local_wall : 0.0;

    // Loopback socket closed loop: identical load through the front door.
    net::NetServer net_server(rpc_server, {});
    if (!net_server.start().ok()) {
      std::fprintf(stderr, "net server start failed\n");
      return 1;
    }
    net::ClientPoolOptions pool_options;
    pool_options.client.port = net_server.port();
    pool_options.connections = rpc_clients;
    auto pool = net::ClientPool::connect(pool_options);
    if (!pool.ok()) {
      std::fprintf(stderr, "client pool connect failed: %s\n",
                   pool.error().to_string().c_str());
      return 1;
    }
    std::vector<std::vector<Word>> rpc_streams;
    rpc_streams.reserve(images.size());
    for (const auto& image : images) {
      auto words = loadable::compile_input(first, image);
      if (!words.ok()) return 1;
      rpc_streams.push_back(std::move(words).value());
    }
    serve::LatencyHistogram remote_latency;
    std::mutex remote_latency_mutex;  // guards remote_latency
    cursor.store(0);
    const auto remote_start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> threads;
      for (std::size_t t = 0; t < rpc_clients; ++t) {
        threads.emplace_back([&] {
          for (;;) {
            const std::size_t i = cursor.fetch_add(1);
            if (i >= rpc_requests) return;
            const auto t0 = std::chrono::steady_clock::now();
            auto r = pool.value()->infer("m", rpc_streams[i % images.size()]);
            if (!r.ok()) std::abort();
            const double us = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
            std::lock_guard<std::mutex> lock(remote_latency_mutex);
            remote_latency.record(us);
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    const double remote_wall = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - remote_start)
                                   .count();
    const double remote_ips =
        remote_wall > 0.0 ? static_cast<double>(rpc_requests) / remote_wall : 0.0;
    net_server.stop();
    rpc_server.stop();

    std::printf("\nrpc overhead (%zu requests, %zu closed-loop clients, fast "
                "backend):\n",
                rpc_requests, rpc_clients);
    std::printf("%-22s %12s %10s %10s\n", "path", "images/s", "p50 us", "p99 us");
    std::printf("%-22s %12.1f %10.2f %10.2f\n", "in-process submit", local_ips,
                local_latency.p50(), local_latency.p99());
    std::printf("%-22s %12.1f %10.2f %10.2f\n", "loopback socket", remote_ips,
                remote_latency.p50(), remote_latency.p99());
    std::printf("loopback retains %.0f%% of in-process throughput; p50 adds "
                "%.1f us of wire + framing\n",
                local_ips > 0.0 ? 100.0 * remote_ips / local_ips : 0.0,
                remote_latency.p50() - local_latency.p50());
    rows.push_back({"rpc", "in-process submit", 1, local_ips,
                    local_latency.p50(), local_latency.p99(), 0.0});
    rows.push_back({"rpc", "loopback socket", 1, remote_ips,
                    remote_latency.p50(), remote_latency.p99(), 0.0});
  }

  std::printf(
      "\ncold fused run: %llu cycles/request; warm resident run: %llu "
      "cycles/request\n",
      static_cast<unsigned long long>(cold_cycles),
      static_cast<unsigned long long>(warm_cycles));
  std::printf(
      "model stream (%zu words) crosses the host link once per session; "
      "after that each request ships %zu input words instead of the %zu-word "
      "fused loadable.\n",
      model_stream.value().size(), input_words, fused_words);

  write_json("BENCH_serving.json", variant.name() + " + " + sweep_variant.name(),
             images.size(), rows, scaling);
  std::printf("wrote BENCH_serving.json (%zu rows)\n", rows.size());
  return 0;
}
