// Serving benchmark: serial cold driver vs. session engine.
//
// The serial baseline is the historical Driver::infer path — every request
// re-streams the fused loadable (weights included) and simulates from a
// fresh accelerator. The engine path loads the model stream once into a
// Session (one persistent context per thread), so per-request host traffic
// is the input stream only and the thread pool fans requests across
// contexts. Two effects show up:
//  * warm resident cycles < cold fused cycles (weight streaming leaves the
//    per-request critical path);
//  * simulator wall-clock throughput scales with threads (each request's
//    simulation is single-threaded and independent).
//
// Per-request model latency (simulated µs) feeds the serving-layer
// histogram, so each row also reports p50/p95/p99 alongside throughput.
#include <cstdio>
#include <chrono>
#include <vector>

#include "core/accelerator.hpp"
#include "data/synthetic_mnist.hpp"
#include "engine/inference_engine.hpp"
#include "engine/session.hpp"
#include "loadable/compiler.hpp"
#include "nn/model_zoo.hpp"
#include "runtime/driver.hpp"
#include "serve/server_stats.hpp"

using namespace netpu;

int main() {
  common::Xoshiro256 rng(7);
  const nn::ModelVariant variant{nn::Topology::kSfc, 1, 1};  // SFC-w1a1
  const auto mlp = nn::make_random_quantized_model(variant, true, rng);
  const auto dataset = data::make_synthetic_mnist(64, 11);

  std::vector<std::vector<std::uint8_t>> images;
  images.reserve(dataset.images.size());
  for (const auto& img : dataset.images) images.push_back(img);

  const auto config = core::NetpuConfig::paper_instance();

  std::printf("Serving %zu synthetic-MNIST images, %s on the paper instance:\n\n",
              images.size(), variant.name().c_str());

  // --- serial baseline: cold fused runs through the driver --------------
  core::Accelerator acc(config);
  runtime::Driver driver(acc);
  Cycle cold_cycles = 0;
  serve::LatencyHistogram serial_latency;
  const auto serial_start = std::chrono::steady_clock::now();
  for (const auto& image : images) {
    auto m = driver.infer(mlp, image);
    if (!m.ok()) {
      std::fprintf(stderr, "serial inference failed: %s\n",
                   m.error().to_string().c_str());
      return 1;
    }
    cold_cycles = m.value().cycles;
    serial_latency.record(m.value().measured_us);
  }
  const double serial_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serial_start)
          .count();
  const double serial_ips =
      serial_wall > 0.0 ? static_cast<double>(images.size()) / serial_wall : 0.0;

  // Host traffic per request, both ways.
  auto model_stream = loadable::compile_model(mlp, config.compile_options());
  if (!model_stream.ok()) return 1;
  const auto first = loadable::LayerSetting::from_layer(mlp.layers.front());
  const std::size_t fused_words =
      loadable::model_size_words(mlp) + loadable::input_size_words(first) - 2;
  const std::size_t input_words = loadable::input_size_words(first);

  std::printf("%-22s %12s %12s %10s %9s %9s %9s\n", "path", "images/s",
              "speedup", "host w/req", "p50 us", "p95 us", "p99 us");
  std::printf("%-22s %12.1f %12s %10zu %9.2f %9.2f %9.2f\n",
              "serial driver (cold)", serial_ips, "1.00x", fused_words,
              serial_latency.p50(), serial_latency.p95(), serial_latency.p99());

  // --- engine: warm resident contexts, 1/2/4/8 threads ------------------
  Cycle warm_cycles = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    auto session = engine::Session::create(config, {.contexts = threads});
    if (!session.ok()) return 1;
    if (auto s = session.value().load_model(mlp); !s.ok()) {
      std::fprintf(stderr, "model load failed: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
    engine::InferenceEngine eng(session.value(), threads);
    auto batch = eng.run_batch(images);
    if (!batch.ok()) {
      std::fprintf(stderr, "run_batch failed: %s\n",
                   batch.error().to_string().c_str());
      return 1;
    }
    const auto& stats = batch.value().stats;
    warm_cycles = batch.value().results.front().cycles;
    serve::LatencyHistogram warm_latency;
    for (const auto& r : batch.value().results) {
      warm_latency.record(r.latency_us(config));
    }
    char label[64];
    std::snprintf(label, sizeof label, "engine, %zu thread%s", threads,
                  threads == 1 ? "" : "s");
    std::printf("%-22s %12.1f %11.2fx %10zu %9.2f %9.2f %9.2f\n", label,
                stats.images_per_second,
                serial_ips > 0.0 ? stats.images_per_second / serial_ips : 0.0,
                input_words, warm_latency.p50(), warm_latency.p95(),
                warm_latency.p99());
  }

  // --- execution backends: cycle sim vs. functional fast path -----------
  // Same engine, same 4-thread fan-out; only RunOptions::backend changes.
  // The fast path must stay bit-identical to the simulator while clearing
  // the >=5x images/s bar (it skips FIFO ticking entirely, so in practice
  // the margin is orders of magnitude).
  std::printf("\nexecution backends (engine, 4 threads):\n");
  std::printf("%-26s %12s %12s %14s\n", "backend", "images/s", "speedup",
              "cycles/req");
  auto session = engine::Session::create(config, {.contexts = 4});
  if (!session.ok()) return 1;
  if (!session.value().load_model(mlp).ok()) return 1;
  engine::InferenceEngine eng(session.value(), 4);

  double cycle_ips = 0.0, fast_ips = 0.0;
  std::vector<std::size_t> cycle_predictions;
  for (const auto backend : {core::Backend::kCycle, core::Backend::kFast,
                             core::Backend::kFastLatencyModel}) {
    core::RunOptions options;
    options.backend = backend;
    auto batch = eng.run_batch(images, options);
    if (!batch.ok()) {
      std::fprintf(stderr, "backend %s failed: %s\n", core::to_string(backend),
                   batch.error().to_string().c_str());
      return 1;
    }
    const auto& results = batch.value().results;
    if (backend == core::Backend::kCycle) {
      cycle_ips = batch.value().stats.images_per_second;
      cycle_predictions.reserve(results.size());
      for (const auto& r : results) cycle_predictions.push_back(r.predicted);
    } else {
      if (backend == core::Backend::kFast) {
        fast_ips = batch.value().stats.images_per_second;
      }
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].predicted != cycle_predictions[i]) {
          std::fprintf(stderr,
                       "BACKEND MISMATCH: %s predicted %zu, cycle %zu (image %zu)\n",
                       core::to_string(backend), results[i].predicted,
                       cycle_predictions[i], i);
          return 1;
        }
      }
    }
    std::printf("%-26s %12.1f %11.2fx %14llu\n", core::to_string(backend),
                batch.value().stats.images_per_second,
                cycle_ips > 0.0
                    ? batch.value().stats.images_per_second / cycle_ips
                    : 0.0,
                static_cast<unsigned long long>(results.front().cycles));
  }
  if (fast_ips < 5.0 * cycle_ips) {
    std::fprintf(stderr,
                 "FAIL: fast backend %.1f images/s < 5x cycle backend %.1f\n",
                 fast_ips, cycle_ips);
    return 1;
  }
  std::printf(
      "fast backend: %.1fx the cycle simulator, predictions bit-identical "
      "(>=5x required)\n",
      cycle_ips > 0.0 ? fast_ips / cycle_ips : 0.0);

  std::printf(
      "\ncold fused run: %llu cycles/request; warm resident run: %llu "
      "cycles/request\n",
      static_cast<unsigned long long>(cold_cycles),
      static_cast<unsigned long long>(warm_cycles));
  std::printf(
      "model stream (%zu words) crosses the host link once per session; "
      "after that each request ships %zu input words instead of the %zu-word "
      "fused loadable.\n",
      model_stream.value().size(), input_words, fused_words);
  return 0;
}
