// Ablations over the design choices DESIGN.md calls out:
//  1. TNPUs per LPU (parallelism vs the serial weight stream),
//  2. LPU count (ring depth vs single-layer reuse),
//  3. Multi-Threshold precision cap (Table IV blow-up at instance level),
//  4. Layer Weight buffer size (batch shrinking on wide fan-in),
//  5. activation/weight precision 1-8 bits (stream volume scaling).
#include <cstdio>

#include "engine/accelerator.hpp"
#include "core/latency_model.hpp"
#include "hw/power_model.hpp"
#include "nn/model_zoo.hpp"

using namespace netpu;

namespace {

Cycle simulate(const core::NetpuConfig& config, const nn::QuantizedMlp& mlp,
               common::Xoshiro256& rng) {
  core::Accelerator acc(config);
  std::vector<std::uint8_t> image(mlp.input_size());
  for (auto& p : image) p = static_cast<std::uint8_t>(rng.next_below(256));
  auto run = acc.run(mlp, image);
  return run.ok() ? run.value().cycles : 0;
}

}  // namespace

int main() {
  common::Xoshiro256 rng(5);
  const nn::ModelVariant sfc_w2a2{nn::Topology::kSfc, 2, 2};
  const auto sfc = nn::make_random_quantized_model(sfc_w2a2, true, rng);

  std::printf("Ablation 1: TNPUs per LPU (SFC-w2a2)\n");
  std::printf("%8s %12s %10s %10s\n", "TNPUs", "cycles", "us@100MHz", "LUTs");
  for (const int tnpus : {1, 2, 4, 8, 16}) {
    auto config = core::NetpuConfig::paper_instance();
    config.lpu.tnpus = tnpus;
    const auto cycles = simulate(config, sfc, rng);
    std::printf("%8d %12llu %10.1f %10ld\n", tnpus,
                static_cast<unsigned long long>(cycles),
                config.cycles_to_us(cycles), config.resources().luts);
  }
  std::printf("(parallel TNPUs saturate once the serial weight stream "
              "dominates — the paper's Sec. V bottleneck)\n\n");

  std::printf("Ablation 2: LPU count (SFC-w2a2)\n");
  std::printf("%8s %12s %10s %10s\n", "LPUs", "cycles", "us@100MHz", "LUTs");
  for (const int lpus : {1, 2, 3, 4}) {
    auto config = core::NetpuConfig::paper_instance();
    config.lpus = lpus;
    const auto cycles = simulate(config, sfc, rng);
    std::printf("%8d %12llu %10.1f %10ld\n", lpus,
                static_cast<unsigned long long>(cycles),
                config.cycles_to_us(cycles), config.resources().luts);
  }
  std::printf("(single-image inference barely benefits from more LPUs: layers "
              "are sequential; the ring buys depth, not speed)\n\n");

  std::printf("Ablation 3: Multi-Threshold precision cap\n");
  std::printf("%8s %10s %12s %14s\n", "MT bits", "LUTs", "LUT rate", "fits "
              "Ultra96?");
  for (const int mt : {1, 2, 4, 6, 8}) {
    auto config = core::NetpuConfig::paper_instance();
    config.tnpu.max_mt_bits = mt;
    const auto r = config.resources();
    const auto u = hw::utilization(r, hw::ultra96_v2());
    std::printf("%8d %10ld %11.1f%% %14s\n", mt, r.luts, 100.0 * u.luts,
                u.luts <= 1.0 ? "yes" : "NO");
  }
  std::printf("(the 16-TNPU instance stops fitting beyond ~4-bit Multi-"
              "Threshold — why the paper caps it)\n\n");

  std::printf("Ablation 4: Layer Weight buffer words (LFC-w1a2, 128-word "
              "chunks/neuron)\n");
  const auto lfc = nn::make_random_quantized_model({nn::Topology::kLfc, 1, 2},
                                                   true, rng);
  std::printf("%8s %12s %10s\n", "words", "cycles", "us@100MHz");
  for (const std::uint32_t words : {128u, 256u, 512u, 1024u}) {
    auto config = core::NetpuConfig::paper_instance();
    config.lpu.buffers.layer_weight_words = words;
    const auto cycles = simulate(config, lfc, rng);
    std::printf("%8u %12llu %10.1f\n", words,
                static_cast<unsigned long long>(cycles),
                config.cycles_to_us(cycles));
  }
  std::printf("(a buffer smaller than batch x chunks shrinks the effective "
              "batch and idles TNPUs)\n\n");

  std::printf("Ablation 5: precision sweep (256-input MLP, weight==activation "
              "bits, MT cap 8)\n");
  std::printf("%8s %12s %10s %14s\n", "bits", "cycles", "us@100MHz",
              "weight words");
  for (const int bits : {1, 2, 3, 4, 8}) {
    auto config = core::NetpuConfig::paper_instance();
    config.tnpu.max_mt_bits = 8;
    nn::RandomMlpSpec spec;
    spec.input_size = 256;
    spec.hidden = {64, 64, 64};
    spec.outputs = 10;
    spec.weight_bits = bits;
    spec.activation_bits = bits;
    const auto mlp = nn::random_quantized_mlp(spec, rng);
    const auto cycles = simulate(config, mlp, rng);
    const auto est = core::estimate_latency(mlp, config);
    if (cycles == 0) {
      // 2^bits - 1 thresholds per neuron overflow the Table III
      // Multi-Threshold buffer — a real capacity limit of the instance.
      std::printf("%8d %12s %10s %14s\n", bits, "n/a", "n/a",
                  "(MT section exceeds the parameter buffers)");
      continue;
    }
    std::printf("%8d %12llu %10.1f %14llu\n", bits,
                static_cast<unsigned long long>(cycles),
                config.cycles_to_us(cycles),
                static_cast<unsigned long long>(est.weight_traffic / 2));
  }
  std::printf("(1-bit streams 64 values/word; 2-8 bits stream 8/word — the "
              "Sec. V placeholder-bit inefficiency is visible as the flat "
              "2-8 bit region)\n");
  return 0;
}
