// Regenerates Table I: the XNOR gate as binarized multiplier, in both the
// signed (+1/-1) value domain and the unsigned (1/0) encoding domain.
#include <cstdio>

#include "hw/multiplier.hpp"

int main() {
  std::printf("Table I: XNOR as Binarized Multiplier\n\n");
  std::printf("        Signed            |        Unsigned\n");
  std::printf("  Inputs      Output      |   Inputs      Output\n");
  for (const int a : {1, 0}) {
    for (const int w : {1, 0}) {
      const int product = netpu::hw::xnor_lane_dot(static_cast<std::uint8_t>(a),
                                                   static_cast<std::uint8_t>(w), 1);
      const int sa = a ? 1 : -1;
      const int sw = w ? 1 : -1;
      const int bit = product > 0 ? 1 : 0;
      std::printf("  %2d  %2d  ->  %2d         |   %d   %d  ->   %d\n", sa, sw,
                  product, a, w, bit);
    }
  }
  std::printf("\nPopcount check: dot of 8 channels (all +1 * +1) = %d\n",
              static_cast<int>(netpu::hw::word_dot(0xff, 0xff, {1, true},
                                                   {1, true}, 8)));
  return 0;
}
