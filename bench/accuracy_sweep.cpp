// Accuracy experiment (Sec. IV narrative: "our NetPU-M instance can infer
// all six network models ... without hardware regeneration").
//
// Trains the TFC topology on synthetic MNIST in the three precision
// variants, lowers each to the integer network and reports float /
// fake-quantized / accelerator (functional-mode, bit-exact with the cycle
// simulator) accuracy, all served by ONE accelerator configuration.
//
// SFC/LFC train the same way but take minutes on one core; TFC carries the
// claim (the topologies differ only in width).
#include <cstdio>

#include "engine/accelerator.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/lowering.hpp"
#include "nn/model_zoo.hpp"
#include "nn/trainer.hpp"

using namespace netpu;

int main() {
  const auto train_ds = data::make_synthetic_mnist(3000, 11);
  const auto test_ds = data::make_synthetic_mnist(800, 12);
  const auto train = train_ds.to_train_samples();
  const auto test = test_ds.to_train_samples();

  core::Accelerator acc(core::NetpuConfig::paper_instance());

  std::printf("Accuracy on synthetic MNIST (3000 train / 800 test), TFC "
              "topology, one NetPU-M instance:\n\n");
  std::printf("%-10s | %9s %10s %12s | %s\n", "Variant", "float-fwd",
              "fake-q", "accelerator", "latency/img (us)");

  const nn::ModelVariant variants[] = {
      {nn::Topology::kTfc, 1, 1},
      {nn::Topology::kTfc, 2, 2},
      {nn::Topology::kTfc, 1, 2},
  };
  for (const auto& variant : variants) {
    auto model = nn::make_float_model(variant);
    nn::TrainConfig cfg;
    cfg.epochs = 6;
    cfg.qat = true;
    cfg.learning_rate = 0.08f;
    cfg.seed = 3;
    nn::Trainer trainer(model, cfg);
    trainer.initialize_weights();
    trainer.fit(train);
    nn::Trainer::calibrate_activation_scales(
        model, std::span<const nn::TrainSample>(train).subspan(0, 128));
    nn::TrainConfig fine = cfg;
    fine.learning_rate = 0.02f;
    fine.epochs = 4;
    nn::Trainer(model, fine).fit(train);

    const double float_acc = nn::Trainer::evaluate(model, test, false);
    const double fq_acc = nn::Trainer::evaluate(model, test, true);

    auto lowered = nn::lower(model, nn::LoweringOptions{});
    if (!lowered.ok()) {
      std::fprintf(stderr, "lowering failed: %s\n",
                   lowered.error().to_string().c_str());
      return 1;
    }
    std::size_t correct = 0;
    core::RunOptions opts;
    opts.mode = core::RunMode::kFunctional;
    for (std::size_t i = 0; i < test_ds.size(); ++i) {
      auto run = acc.run(lowered.value(), test_ds.images[i], opts);
      if (run.ok() &&
          run.value().predicted == static_cast<std::size_t>(test_ds.labels[i])) {
        ++correct;
      }
    }
    const double acc_acc =
        static_cast<double>(correct) / static_cast<double>(test_ds.size());

    auto timed = acc.run(lowered.value(), test_ds.images[0]);
    const double us =
        timed.ok() ? timed.value().latency_us(acc.config()) : -1.0;
    std::printf("%-10s | %8.1f%% %9.1f%% %11.1f%% | %10.2f\n",
                variant.name().c_str(), 100 * float_acc, 100 * fq_acc,
                100 * acc_acc, us);
  }
  std::printf("\n(fake-q is the QAT deployment target; the accelerator "
              "column runs the lowered integer network, bit-exact with the "
              "cycle simulator. float-fwd evaluates the QAT master weights "
              "without quantization — low by design, the weights co-adapted "
              "to the quantizers.)\n");
  return 0;
}
