// Regenerates Table V: simulation + resource utilization of the NetPU-M
// instance (2 LPUs x 8 TNPUs, 100 MHz) on Ultra96-V2.
//
// Rows, as in the paper:
//   * w2a2 models, Multi-Threshold activation, BN folding enabled
//   * w2a2 models, Multi-Threshold activation, BN folding disabled
//   * w1a1 models, Sign activation (BN folded into thresholds)
// Columns: TFC (64x3), SFC (256x3), LFC (1024x3); LFC runs w1a2 in the
// third row's quantized variant as in Table VI.
//
// Latency does not depend on learned weights (dense MLP, fixed schedule),
// so the models carry random parameters of the exact topology/precision.
#include <cstdio>

#include "engine/accelerator.hpp"
#include "core/latency_model.hpp"
#include "hw/power_model.hpp"
#include "nn/model_zoo.hpp"

using namespace netpu;

namespace {

double simulate_us(core::Accelerator& acc, const nn::ModelVariant& variant,
                   bool bn_fold, Cycle* cycles_out = nullptr) {
  common::Xoshiro256 rng(7);
  const auto mlp = nn::make_random_quantized_model(variant, bn_fold, rng);
  std::vector<std::uint8_t> image(mlp.input_size());
  for (auto& p : image) p = static_cast<std::uint8_t>(rng.next_below(256));
  auto run = acc.run(mlp, image);
  if (!run.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", run.error().to_string().c_str());
    return -1.0;
  }
  if (cycles_out != nullptr) *cycles_out = run.value().cycles;
  return run.value().latency_us(acc.config());
}

}  // namespace

int main() {
  const auto config = core::NetpuConfig::paper_instance();
  core::Accelerator acc(config);

  std::printf("Table V: Simulation and Resource Utilization of NetPU-M on "
              "Ultra96-V2 @ %.0f MHz\n", config.clock_mhz);
  std::printf("Instance: %d LPUs x %d TNPUs, Multi-Threshold cap %d bits\n\n",
              config.lpus, config.lpu.tnpus, config.tnpu.max_mt_bits);

  const auto res = acc.resources();
  const auto device = hw::ultra96_v2();
  const auto util = hw::utilization(res, device);
  std::printf("%-10s %10s %10s %10s\n", "Resource", "Used", "Total", "Rate");
  std::printf("%-10s %10ld %10ld %9.2f%%   (paper: 59755 / 84.69%%)\n", "LUT",
              res.luts, device.luts, 100.0 * util.luts);
  std::printf("%-10s %10ld %10ld %9.2f%%   (paper: 256 / 71.11%%)\n", "DSP",
              res.dsps, device.dsps, 100.0 * util.dsps);
  std::printf("%-10s %10ld %10ld %9.2f%%   (paper: 14601 / 10.35%%)\n", "FF",
              res.ffs, device.ffs, 100.0 * util.ffs);
  std::printf("%-10s %10.1f %10.1f %9.2f%%   (paper: 129.5 / 59.95%%)\n\n", "BRAM",
              res.bram36, device.bram36, 100.0 * util.bram36);

  struct Row {
    const char* label;
    int w_bits, a_bits;
    bool bn_fold;
    double paper_tfc, paper_sfc, paper_lfc;
  };
  // LFC's quantized rows use w1a2 (Table V/VI); TFC/SFC use w2a2.
  const Row rows[] = {
      {"Multi-Thres, BN fold=Yes", 2, 2, true, 172.165, 882.085, 7408.225},
      {"Multi-Thres, BN fold=No ", 2, 2, false, 175.805, 895.805, 7462.205},
      {"Sign (w1a1), fold thresh", 1, 1, true, 38.745, 133.785, 974.745},
  };

  std::printf("%-26s | %22s | %22s | %22s\n", "Inference latency (us)",
              "TFC (64x3)", "SFC (256x3)", "LFC (1024x3)");
  std::printf("%-26s | %10s %11s | %10s %11s | %10s %11s\n", "", "ours", "paper",
              "ours", "paper", "ours", "paper");
  for (const auto& row : rows) {
    nn::ModelVariant tfc{nn::Topology::kTfc, row.w_bits, row.a_bits};
    nn::ModelVariant sfc{nn::Topology::kSfc, row.w_bits, row.a_bits};
    nn::ModelVariant lfc{nn::Topology::kLfc, row.a_bits == 1 ? 1 : 1,
                         row.a_bits};  // LFC: w1a1 or w1a2
    const double tfc_us = simulate_us(acc, tfc, row.bn_fold);
    const double sfc_us = simulate_us(acc, sfc, row.bn_fold);
    const double lfc_us = simulate_us(acc, lfc, row.bn_fold);
    std::printf("%-26s | %10.2f %11.2f | %10.2f %11.2f | %10.2f %11.2f\n",
                row.label, tfc_us, row.paper_tfc, sfc_us, row.paper_sfc, lfc_us,
                row.paper_lfc);
  }

  std::printf("\nShape checks (paper-reported properties):\n");
  {
    nn::ModelVariant tfc1{nn::Topology::kTfc, 1, 1};
    nn::ModelVariant tfc2{nn::Topology::kTfc, 2, 2};
    const double t1 = simulate_us(acc, tfc1, true);
    const double t2f = simulate_us(acc, tfc2, true);
    const double t2n = simulate_us(acc, tfc2, false);
    std::printf("  binarized < 2-bit quantized:        %s (%.2f vs %.2f us)\n",
                t1 < t2f ? "yes" : "NO", t1, t2f);
    std::printf("  BN folding speeds up inference:     %s (%.2f vs %.2f us)\n",
                t2f < t2n ? "yes" : "NO", t2f, t2n);
  }
  return 0;
}
