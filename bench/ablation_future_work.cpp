// Quantifies the paper's Sec. V "further works" on the Table V/VI models:
//  #1 optimized data loading  -> overlapped (flow-through) weight streaming
//  #3 multi-channel low-precision loading -> dense stream packing
// Both extensions are implemented in this library (off by default, matching
// the paper's instance) and remain bit-exact with the golden model.
#include <cstdio>

#include "engine/accelerator.hpp"
#include "nn/model_zoo.hpp"

using namespace netpu;

namespace {

double run_us(const core::NetpuConfig& config, const nn::QuantizedMlp& mlp,
              const std::vector<std::uint8_t>& image) {
  core::Accelerator acc(config);
  auto run = acc.run(mlp, image);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.error().to_string().c_str());
    return -1.0;
  }
  return run.value().latency_us(config);
}

}  // namespace

int main() {
  common::Xoshiro256 rng(17);
  std::printf("Sec. V further-work ablation (NetPU-M paper instance vs "
              "extended instances)\n\n");
  std::printf("%-10s | %10s | %12s | %10s | %14s\n", "Model", "baseline",
              "+overlapped", "+dense", "+both (x speedup)");

  const nn::ModelVariant variants[] = {
      {nn::Topology::kTfc, 2, 2},
      {nn::Topology::kSfc, 2, 2},
      {nn::Topology::kLfc, 1, 2},
  };
  for (const auto& variant : variants) {
    const auto mlp = nn::make_random_quantized_model(variant, true, rng);
    std::vector<std::uint8_t> image(mlp.input_size());
    for (auto& p : image) p = static_cast<std::uint8_t>(rng.next_below(256));

    const auto base_cfg = core::NetpuConfig::paper_instance();
    core::NetpuConfig over_cfg = base_cfg;
    over_cfg.overlapped_weight_stream = true;
    core::NetpuConfig dense_cfg = base_cfg;
    dense_cfg.tnpu.dense_support = true;
    core::NetpuConfig both_cfg = over_cfg;
    both_cfg.tnpu.dense_support = true;

    auto dense_mlp = mlp;
    const bool dense_ok = nn::enable_dense_stream(dense_mlp).ok();

    const double base = run_us(base_cfg, mlp, image);
    const double over = run_us(over_cfg, mlp, image);
    const double dense = dense_ok ? run_us(dense_cfg, dense_mlp, image) : -1.0;
    const double both = dense_ok ? run_us(both_cfg, dense_mlp, image) : -1.0;
    std::printf("%-10s | %8.1fus | %10.1fus | %8.1fus | %8.1fus (%.2fx)\n",
                variant.name().c_str(), base, over, dense, both, base / both);
  }

  std::printf("\nResource cost of the extensions (paper instance baseline):\n");
  const auto base = core::NetpuConfig::paper_instance().resources();
  core::NetpuConfig dense_cfg = core::NetpuConfig::paper_instance();
  dense_cfg.tnpu.dense_support = true;
  const auto dense = dense_cfg.resources();
  std::printf("  baseline:       %ld LUTs, %.1f BRAM36\n", base.luts, base.bram36);
  std::printf("  +dense MUL bank: %ld LUTs (+%ld)\n", dense.luts,
              dense.luts - base.luts);
  std::printf("  +overlapped:    no extra logic (removes the fill pass)\n");

  // Future work #2: buffer reuse (mutually exclusive parameter types share
  // physical buffers; bit-exact, BRAM-only effect).
  core::NetpuConfig reuse_cfg = core::NetpuConfig::paper_instance();
  reuse_cfg.lpu.buffer_reuse = true;
  const auto reuse = reuse_cfg.resources();
  std::printf("  +buffer reuse (#2): %.1f BRAM36 (-%.1f), latency unchanged\n",
              reuse.bram36, base.bram36 - reuse.bram36);
  std::printf("\n(w1a1 models gain only from overlapping: 1-bit streams were "
              "already densely packed.)\n");
  return 0;
}
