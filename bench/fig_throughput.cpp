// Figure-equivalent: steady-state throughput (images/s).
//
// The paper reports only single-image latency; throughput is where the
// architectural trade bites hardest and completes the Table VI story:
//  * NetPU-M holds no weights on chip — every inference re-streams the full
//    loadable, so throughput ~= 1 / measured latency (per board);
//  * FINN keeps weights resident and pipelines layers — throughput is set
//    by the slowest MVTU's initiation interval, far above 1/latency;
//  * pipelining several NetPU-M boards (Sec. I-B) claws throughput back
//    without touching the per-board design.
#include <cstdio>

#include "baseline/finn.hpp"
#include "engine/accelerator.hpp"
#include "nn/model_zoo.hpp"
#include "serve/driver.hpp"
#include "runtime/multi_fpga.hpp"

using namespace netpu;

int main() {
  common::Xoshiro256 rng(23);
  std::printf("Throughput (images/s), steady state:\n\n");
  std::printf("%-10s | %12s %12s %12s | %12s %12s\n", "Model", "NetPU x1",
              "NetPU x2", "NetPU x4", "FINN-fix*", "FINN-max*");

  struct Row {
    nn::ModelVariant variant;
    double finn_fix_ips;
    double finn_max_ips;
  };
  const Row rows[] = {
      // Conservative FINN throughput: 1 / published latency (a lower bound;
      // the layer pipeline overlaps images, so true throughput is higher).
      {{nn::Topology::kSfc, 1, 1},
       1e6 / baseline::sfc_fix().published_latency_us,
       1e6 / baseline::sfc_max().published_latency_us},
      {{nn::Topology::kLfc, 1, 1},
       1e6 / baseline::lfc_fix().published_latency_us,
       1e6 / baseline::lfc_max().published_latency_us},
  };

  for (const auto& row : rows) {
    const auto mlp = nn::make_random_quantized_model(row.variant, true, rng);
    std::vector<std::uint8_t> image(mlp.input_size());
    for (auto& p : image) p = static_cast<std::uint8_t>(rng.next_below(256));

    core::Accelerator acc(core::NetpuConfig::paper_instance());
    serve::Driver driver(acc);
    auto m = driver.infer(mlp, image);
    if (!m.ok()) {
      std::fprintf(stderr, "inference failed: %s\n", m.error().to_string().c_str());
      return 1;
    }
    const double one_board = 1e6 / m.value().measured_us;
    runtime::MultiFpgaPipeline two(mlp, core::NetpuConfig::paper_instance(), 2);
    runtime::MultiFpgaPipeline four(mlp, core::NetpuConfig::paper_instance(), 4);
    std::printf("%-10s | %12.0f %12.0f %12.0f | %12.0f %12.0f\n",
                row.variant.name().c_str(), one_board,
                two.throughput_images_per_s(), four.throughput_images_per_s(),
                row.finn_fix_ips, row.finn_max_ips);
  }

  std::printf("\n* 1/latency lower bounds.\nReading: the weight-resident FINN pipelines dominate "
              "throughput (their II is per-image, not per-weight); NetPU-M "
              "trades that for one bitstream serving every model, and claws "
              "back linearly with pipelined boards.\n");
  return 0;
}
