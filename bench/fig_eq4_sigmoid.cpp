// Regenerates the data behind Eq. 4: the piecewise-linear sigmoid (and the
// derived tanh) against the exact functions — series for x in [-8, 8] plus
// error summary. The paper presents this as an equation; we emit the curve
// a plot would use.
#include <cmath>
#include <cstdio>

#include "hw/activation_unit.hpp"

using netpu::common::Q32x5;

int main() {
  std::printf("Eq. 4: piecewise-linear Sigmoid on the Q32.5 datapath\n\n");
  std::printf("%8s %12s %12s %10s | %12s %12s\n", "x", "sigmoid_pwl", "sigmoid",
              "abs err", "tanh_pwl", "tanh");
  double max_sig_err = 0.0, max_tanh_err = 0.0;
  double sum_sig_err = 0.0;
  int count = 0;
  for (double x = -8.0; x <= 8.0 + 1e-9; x += 0.5) {
    const double sig = netpu::hw::sigmoid_pwl(Q32x5::from_double(x)).to_double();
    const double sig_exact = 1.0 / (1.0 + std::exp(-x));
    const double th = netpu::hw::tanh_pwl(Q32x5::from_double(x)).to_double();
    const double th_exact = std::tanh(x);
    std::printf("%8.2f %12.5f %12.5f %10.5f | %12.5f %12.5f\n", x, sig, sig_exact,
                std::fabs(sig - sig_exact), th, th_exact);
  }
  for (double x = -8.0; x <= 8.0; x += 1.0 / 32.0) {
    const double sig = netpu::hw::sigmoid_pwl(Q32x5::from_double(x)).to_double();
    const double sig_exact = 1.0 / (1.0 + std::exp(-x));
    const double th = netpu::hw::tanh_pwl(Q32x5::from_double(x)).to_double();
    max_sig_err = std::max(max_sig_err, std::fabs(sig - sig_exact));
    max_tanh_err = std::max(max_tanh_err, std::fabs(th - std::tanh(x)));
    sum_sig_err += std::fabs(sig - sig_exact);
    ++count;
  }
  std::printf("\nmax |sigmoid error| = %.5f, mean = %.5f, max |tanh error| = %.5f\n",
              max_sig_err, sum_sig_err / count, max_tanh_err);
  std::printf("(shift-and-add only: no DSP slices, the point of Eq. 4)\n");
  return 0;
}
