// netpu-train: train one of the paper's model variants on synthetic MNIST
// (or an IDX dataset) with QAT, lower it, and write a .netpum model file.
//
//   netpu-train --variant TFC-w1a1 --out model.netpum [options]
//
// Options:
//   --variant NAME     TFC|SFC|LFC - w{1,2}a{1,2} (default TFC-w1a1)
//   --train N          synthetic training images (default 3000)
//   --epochs N         QAT epochs (default 6)
//   --lr F             learning rate (default 0.05)
//   --seed N           RNG seed (default 1)
//   --no-bn-fold       keep the BN stage active instead of folding (Eq. 2/3)
//   --idx-images PATH  train on an IDX image file (with --idx-labels)
//   --idx-labels PATH
#include <cstdio>
#include <cstring>
#include <string>

#include "data/idx.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/lowering.hpp"
#include "nn/model_io.hpp"
#include "nn/model_zoo.hpp"
#include "nn/trainer.hpp"

using namespace netpu;

namespace {

bool parse_variant(const std::string& name, nn::ModelVariant& out) {
  for (const auto& v : nn::paper_variants()) {
    if (v.name() == name) {
      out = v;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  nn::ModelVariant variant{nn::Topology::kTfc, 1, 1};
  std::string out_path = "model.netpum";
  std::string idx_images, idx_labels;
  std::size_t train_count = 3000;
  nn::TrainConfig cfg;
  cfg.epochs = 6;
  cfg.qat = true;
  cfg.learning_rate = 0.05f;
  cfg.seed = 1;
  nn::LoweringOptions lopts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--variant") {
      const char* v = next();
      if (v == nullptr || !parse_variant(v, variant)) {
        std::fprintf(stderr, "unknown variant; use e.g. TFC-w1a1, SFC-w2a2\n");
        return 2;
      }
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return 2;
      out_path = v;
    } else if (arg == "--train") {
      const char* v = next();
      if (v == nullptr) return 2;
      train_count = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--epochs") {
      const char* v = next();
      if (v == nullptr) return 2;
      cfg.epochs = std::atoi(v);
    } else if (arg == "--lr") {
      const char* v = next();
      if (v == nullptr) return 2;
      cfg.learning_rate = static_cast<float>(std::atof(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return 2;
      cfg.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--no-bn-fold") {
      lopts.bn_fold = false;
    } else if (arg == "--idx-images") {
      const char* v = next();
      if (v == nullptr) return 2;
      idx_images = v;
    } else if (arg == "--idx-labels") {
      const char* v = next();
      if (v == nullptr) return 2;
      idx_labels = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  data::Dataset ds;
  if (!idx_images.empty()) {
    auto loaded = data::load_idx(idx_images, idx_labels);
    if (!loaded.ok()) {
      std::fprintf(stderr, "IDX load failed: %s\n",
                   loaded.error().to_string().c_str());
      return 1;
    }
    ds = std::move(loaded).value();
    std::printf("loaded %zu IDX images\n", ds.size());
  } else {
    ds = data::make_synthetic_mnist(train_count, cfg.seed);
    std::printf("generated %zu synthetic MNIST images\n", ds.size());
  }
  const auto train = ds.to_train_samples();

  std::printf("training %s (%d epochs, lr %.3f, QAT)...\n",
              variant.name().c_str(), cfg.epochs, cfg.learning_rate);
  auto model = nn::make_float_model(variant);
  nn::Trainer trainer(model, cfg);
  trainer.initialize_weights();
  trainer.fit(train);
  const std::size_t calib = std::min<std::size_t>(128, train.size());
  nn::Trainer::calibrate_activation_scales(
      model, std::span<const nn::TrainSample>(train).subspan(0, calib));
  nn::TrainConfig fine = cfg;
  fine.learning_rate = cfg.learning_rate * 0.3f;
  fine.epochs = std::max(1, cfg.epochs / 2);
  nn::Trainer(model, fine).fit(train);
  std::printf("QAT accuracy on the training set: %.1f%%\n",
              100.0 * nn::Trainer::evaluate(model, train, true));

  auto lowered = nn::lower(model, lopts);
  if (!lowered.ok()) {
    std::fprintf(stderr, "lowering failed: %s\n",
                 lowered.error().to_string().c_str());
    return 1;
  }
  if (auto s = nn::save_model(lowered.value(), out_path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.error().to_string().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu layers, %zu weights)\n", out_path.c_str(),
              lowered.value().layers.size(), lowered.value().total_weights());
  return 0;
}
