// netpu-loadgen: trace-driven load generation and capacity search against
// the serving stack (in-process serve::Server or a netpu-netd daemon).
//
//   netpu-loadgen synth --out F [options]      fabricate a workload trace
//   netpu-loadgen replay --trace F [options]   open-loop replay, report SLO view
//   netpu-loadgen capacity [options]           binary-search max req/s under SLO
//
// Trace synthesis (synth, and the capacity probe template):
//   --requests N         trace length (default 1024)
//   --rate R             mean arrival rate, req/s (default 1000)
//   --shape S            poisson | burst | diurnal (default poisson)
//   --burst-factor F     peak/mean rate ratio (default 4)
//   --burst-duty D       fraction of each period at the peak (default 0.25)
//   --period-us P        burst/diurnal cycle length (default 1000000)
//   --models CSV         zoo variants, Zipf-ranked hot-to-cold (default SFC-w1a1)
//   --zipf S             Zipf exponent over the model list (default 1.0)
//   --deadline-mix W:D,..  weighted deadline classes, us (0 = none)
//   --inputs N           distinct input tags (default 64)
//   --seed S             determinism root (default 1)
//
// Replay / capacity target (in-process serving stack):
//   --batch-size B --max-wait-us W --queue-capacity Q --resident-cap K
//   --contexts N --devices N     as in netpu-serve
//   --backend B          cycle | fast | fast-with-latency-model (default fast)
//   --pace               reserve modeled wall-clock device occupancy per stage
//                        (device-limited results, host-speed independent)
//   --slowdown-us U      inject U us of extra latency per request — the SLO
//                        regression the bench gate must catch (test hook)
//   --remote H:P         replay against a daemon instead (capacity: in-process only)
//   --speed X            replay arrival-time compression (default 1.0)
//   --workers N          replay-side concurrency cap (default 64)
//   --metrics-out F      Prometheus snapshot of the in-process server
//
// Capacity search:
//   --slo-p99-us U       SLO: p99 latency bound, us (default 20000)
//   --min-success F      SLO: completed/offered floor (default 0.99)
//   --lo R / --hi R      search bracket, req/s (default 500 / 64000)
//   --iterations N       bisection steps after bracketing (default 5)
//   --probe-seconds S    trace duration per probe (default 0.4)
//   --smoke              the canonical smoke recipe (load::smoke_spec()) —
//                        identical to bench_serving's capacity section, so
//                        the output diffs against BENCH_serving.json
//   --out F              machine-readable BENCH-schema JSON for the gate
//
// Exit status: nonzero on setup errors, a replay that completes nothing, or
// a capacity search that never finds a feasible rate.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/prng.hpp"
#include "data/synthetic_mnist.hpp"
#include "load/bench_json.hpp"
#include "load/capacity.hpp"
#include "load/generators.hpp"
#include "load/replay.hpp"
#include "load/trace.hpp"
#include "loadable/compiler.hpp"
#include "net/client.hpp"
#include "nn/model_zoo.hpp"
#include "serve/server.hpp"

using namespace netpu;

namespace {

struct Args {
  std::string command;
  std::string out;
  std::string trace_path;
  std::string remote;
  std::string metrics_out;
  load::SynthesisOptions synth;
  load::ReplayOptions replay;
  serve::ServerOptions server;
  serve::RegistryOptions registry{.resident_cap = 2, .contexts_per_model = 2};
  load::SloPolicy slo;
  double lo_rps = 500.0;
  double hi_rps = 64000.0;
  int iterations = 5;
  double probe_seconds = 0.4;
  bool smoke = false;
};

bool parse_variant(const std::string& name, nn::ModelVariant& out) {
  for (const auto& v : nn::paper_variants()) {
    if (v.name() == name) {
      out = v;
      return true;
    }
  }
  return false;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    const auto end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

bool parse_deadline_mix(const std::string& csv,
                        std::vector<std::pair<double, std::uint64_t>>& out) {
  out.clear();
  for (const auto& item : split_csv(csv)) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) return false;
    const double weight = std::atof(item.substr(0, colon).c_str());
    const auto deadline =
        static_cast<std::uint64_t>(std::atoll(item.c_str() + colon + 1));
    if (weight <= 0.0) return false;
    out.emplace_back(weight, deadline);
  }
  return !out.empty();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: netpu-loadgen synth|replay|capacity [options]\n"
      "  synth    --out F [--requests N] [--rate R] [--shape S] [--models CSV]\n"
      "           [--zipf S] [--deadline-mix W:D,...] [--inputs N] [--seed S]\n"
      "           [--burst-factor F] [--burst-duty D] [--period-us P]\n"
      "  replay   --trace F [--speed X] [--workers N] [--remote H:P]\n"
      "           [server knobs] [--pace] [--slowdown-us U] [--metrics-out F]\n"
      "  capacity [--smoke] [--slo-p99-us U] [--min-success F] [--lo R] [--hi R]\n"
      "           [--iterations N] [--probe-seconds S] [--out F]\n"
      "           [synth template] [server knobs] [--pace] [--slowdown-us U]\n");
  return 2;
}

// Registry + dataset for the in-process target: every model name must be a
// zoo variant; weights regenerate deterministically from the seed.
struct InProcessTarget {
  std::unique_ptr<serve::ModelRegistry> registry;
  std::unique_ptr<serve::Server> server;
  std::vector<std::vector<std::uint8_t>> images;
};

bool build_target(const Args& args, const std::vector<std::string>& models,
                  InProcessTarget& out) {
  const auto config = core::NetpuConfig::paper_instance();
  out.registry =
      std::make_unique<serve::ModelRegistry>(config, args.registry);
  common::Xoshiro256 rng(args.synth.seed);
  for (const auto& name : models) {
    nn::ModelVariant variant;
    if (!parse_variant(name, variant)) {
      std::fprintf(stderr, "unknown zoo variant '%s'\n", name.c_str());
      return false;
    }
    const auto mlp = nn::make_random_quantized_model(variant, true, rng);
    if (auto s = out.registry->add_model(name, mlp); !s.ok()) {
      std::fprintf(stderr, "register '%s' failed: %s\n", name.c_str(),
                   s.error().to_string().c_str());
      return false;
    }
  }
  const auto dataset =
      data::make_synthetic_mnist(args.synth.inputs, args.synth.seed + 1);
  out.images.assign(dataset.images.begin(), dataset.images.end());
  out.server = std::make_unique<serve::Server>(*out.registry, args.server);
  out.server->start();
  return true;
}

void print_replay(const load::ReplayResult& r) {
  std::printf("replay: %zu offered, %zu completed, %zu failed over %.3f s\n",
              r.offered, r.completed, r.failed, r.wall_seconds);
  std::printf("  offered %.1f req/s, completed %.1f req/s\n", r.offered_rps,
              r.completed_rps);
  std::printf("  latency (from scheduled arrival): mean %.1f us, p50 %.1f, "
              "p95 %.1f, p99 %.1f, max %.1f\n",
              r.mean_us, r.p50_us, r.p95_us, r.p99_us, r.max_us);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  args.command = argv[1];
  args.server.run_options.backend = core::Backend::kFast;
  args.synth.models = {"SFC-w1a1"};

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--out" && (v = next())) {
      args.out = v;
    } else if (arg == "--trace" && (v = next())) {
      args.trace_path = v;
    } else if (arg == "--requests" && (v = next())) {
      args.synth.requests = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--rate" && (v = next())) {
      args.synth.rate_rps = std::atof(v);
    } else if (arg == "--shape" && (v = next())) {
      const std::string s = v;
      if (s == "poisson") {
        args.synth.shape = load::ArrivalShape::kPoisson;
      } else if (s == "burst") {
        args.synth.shape = load::ArrivalShape::kBurst;
      } else if (s == "diurnal") {
        args.synth.shape = load::ArrivalShape::kDiurnal;
      } else {
        std::fprintf(stderr, "--shape takes poisson | burst | diurnal\n");
        return 2;
      }
    } else if (arg == "--burst-factor" && (v = next())) {
      args.synth.burst_factor = std::atof(v);
    } else if (arg == "--burst-duty" && (v = next())) {
      args.synth.burst_duty = std::atof(v);
    } else if (arg == "--period-us" && (v = next())) {
      args.synth.period_us = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--models" && (v = next())) {
      args.synth.models = split_csv(v);
    } else if (arg == "--zipf" && (v = next())) {
      args.synth.zipf_s = std::atof(v);
    } else if (arg == "--deadline-mix" && (v = next())) {
      if (!parse_deadline_mix(v, args.synth.deadline_mix)) {
        std::fprintf(stderr, "--deadline-mix takes WEIGHT:DEADLINE_US,...\n");
        return 2;
      }
    } else if (arg == "--inputs" && (v = next())) {
      args.synth.inputs = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--seed" && (v = next())) {
      args.synth.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--speed" && (v = next())) {
      args.replay.speed = std::atof(v);
    } else if (arg == "--workers" && (v = next())) {
      args.replay.workers = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--batch-size" && (v = next())) {
      args.server.policy.max_batch_size = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--max-wait-us" && (v = next())) {
      args.server.policy.max_wait_us = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--queue-capacity" && (v = next())) {
      args.server.queue_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--resident-cap" && (v = next())) {
      args.registry.resident_cap = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--contexts" && (v = next())) {
      args.registry.contexts_per_model = static_cast<std::size_t>(std::atoll(v));
      args.server.dispatch_threads = args.registry.contexts_per_model;
    } else if (arg == "--devices" && (v = next())) {
      args.registry.devices = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--backend" && (v = next())) {
      if (!core::parse_backend(v, args.server.run_options.backend)) {
        std::fprintf(stderr,
                     "--backend takes cycle | fast | fast-with-latency-model\n");
        return 2;
      }
    } else if (arg == "--pace") {
      args.server.run_options.pace_devices = true;
    } else if (arg == "--slowdown-us" && (v = next())) {
      args.server.run_options.slowdown_us =
          static_cast<std::uint32_t>(std::atoll(v));
    } else if (arg == "--remote" && (v = next())) {
      args.remote = v;
    } else if (arg == "--metrics-out" && (v = next())) {
      args.metrics_out = v;
    } else if (arg == "--slo-p99-us" && (v = next())) {
      args.slo.p99_us = std::atof(v);
    } else if (arg == "--min-success" && (v = next())) {
      args.slo.min_success = std::atof(v);
    } else if (arg == "--lo" && (v = next())) {
      args.lo_rps = std::atof(v);
    } else if (arg == "--hi" && (v = next())) {
      args.hi_rps = std::atof(v);
    } else if (arg == "--iterations" && (v = next())) {
      args.iterations = std::atoi(v);
    } else if (arg == "--probe-seconds" && (v = next())) {
      args.probe_seconds = std::atof(v);
    } else if (arg == "--smoke") {
      args.smoke = true;
    } else {
      return usage();
    }
  }

  // --- synth: fabricate and write a trace --------------------------------
  if (args.command == "synth") {
    if (args.out.empty()) {
      std::fprintf(stderr, "synth needs --out\n");
      return 2;
    }
    const auto trace = load::synthesize(args.synth);
    if (auto s = load::write_trace(args.out, trace); !s.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
    const double span_s =
        trace.empty() ? 0.0
                      : static_cast<double>(trace.back().arrival_us) / 1e6;
    std::printf("synthesized %zu %s arrivals over %.3f s (mean %.1f req/s) "
                "-> %s\n",
                trace.size(), load::to_string(args.synth.shape), span_s,
                span_s > 0.0 ? static_cast<double>(trace.size()) / span_s : 0.0,
                args.out.c_str());
    return 0;
  }

  // --- replay: drive a recorded/synthesized trace ------------------------
  if (args.command == "replay") {
    if (args.trace_path.empty()) {
      std::fprintf(stderr, "replay needs --trace\n");
      return 2;
    }
    auto trace = load::read_trace(args.trace_path);
    if (!trace.ok()) {
      std::fprintf(stderr, "trace read failed: %s\n",
                   trace.error().to_string().c_str());
      return 1;
    }
    // The model set comes from the trace itself: replay serves exactly what
    // was recorded.
    std::vector<std::string> models;
    for (const auto& e : trace.value()) {
      bool seen = false;
      for (const auto& m : models) seen = seen || m == e.model;
      if (!seen) models.push_back(e.model);
    }
    if (models.empty()) {
      std::fprintf(stderr, "trace is empty\n");
      return 1;
    }

    load::ReplayResult result;
    if (!args.remote.empty()) {
      const auto colon = args.remote.rfind(':');
      const int port =
          colon == std::string::npos ? 0 : std::atoi(args.remote.c_str() + colon + 1);
      if (port <= 0 || port > 65535) {
        std::fprintf(stderr, "--remote takes HOST:PORT\n");
        return 2;
      }
      common::Xoshiro256 rng(args.synth.seed);
      std::vector<loadable::LayerSetting> settings;
      for (const auto& name : models) {
        nn::ModelVariant variant;
        if (!parse_variant(name, variant)) {
          std::fprintf(stderr, "unknown zoo variant '%s'\n", name.c_str());
          return 2;
        }
        const auto mlp = nn::make_random_quantized_model(variant, true, rng);
        settings.push_back(loadable::LayerSetting::from_layer(mlp.layers.front()));
      }
      const auto dataset =
          data::make_synthetic_mnist(args.synth.inputs, args.synth.seed + 1);
      std::vector<std::vector<Word>> streams;
      streams.reserve(dataset.images.size());
      for (std::size_t i = 0; i < dataset.images.size(); ++i) {
        auto words = loadable::compile_input(settings[i % settings.size()],
                                             dataset.images[i]);
        if (!words.ok()) {
          std::fprintf(stderr, "compile input %zu failed\n", i);
          return 1;
        }
        streams.push_back(std::move(words).value());
      }
      net::ClientPoolOptions pool_options;
      pool_options.client.host = args.remote.substr(0, colon);
      pool_options.client.port = static_cast<std::uint16_t>(port);
      pool_options.connections = std::max<std::size_t>(args.replay.workers / 8, 1);
      auto pool = net::ClientPool::connect(pool_options);
      if (!pool.ok()) {
        std::fprintf(stderr, "connect to %s failed: %s\n", args.remote.c_str(),
                     pool.error().to_string().c_str());
        return 1;
      }
      load::RemoteTarget target(*pool.value(), streams);
      result = load::replay(trace.value(), target, args.replay);
    } else {
      InProcessTarget target;
      if (!build_target(args, models, target)) return 1;
      load::ServerTarget server_target(*target.server, target.images);
      result = load::replay(trace.value(), server_target, args.replay);
      if (!args.metrics_out.empty()) {
        FILE* f = std::fopen(args.metrics_out.c_str(), "w");
        if (f == nullptr) {
          std::fprintf(stderr, "cannot open %s\n", args.metrics_out.c_str());
          return 1;
        }
        const auto text = target.server->prometheus_text();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
      }
      target.server->stop();
    }
    print_replay(result);
    if (!args.out.empty()) {
      load::BenchRow row;
      row.section = "replay";
      row.label = args.trace_path;
      row.devices = args.registry.devices;
      row.images_per_s = result.completed_rps;
      row.p50_us = result.p50_us;
      row.p99_us = result.p99_us;
      load::write_bench_json(args.out, models.front(), result.offered,
                             std::thread::hardware_concurrency(), {&row, 1},
                             0.0);
      std::printf("wrote %s\n", args.out.c_str());
    }
    return result.completed > 0 ? 0 : 1;
  }

  // --- capacity: binary-search max sustainable req/s under the SLO -------
  if (args.command == "capacity") {
    if (!args.remote.empty()) {
      std::fprintf(stderr, "capacity drives the in-process server only\n");
      return 2;
    }
    load::ProbePlan plan;
    plan.synth = args.synth;
    plan.replay = args.replay;
    plan.probe_seconds = args.probe_seconds;
    if (args.smoke) {
      // Canonical recipe: must match bench_serving's capacity section so the
      // emitted row diffs against the committed BENCH_serving.json.
      const auto spec = load::smoke_spec();
      plan = spec.plan;
      args.slo = spec.slo;
      args.lo_rps = spec.lo_rps;
      args.hi_rps = spec.hi_rps;
      args.iterations = spec.iterations;
      args.synth.models = plan.synth.models;
      args.synth.seed = plan.synth.seed;
      args.synth.inputs = plan.synth.inputs;
      args.registry.contexts_per_model = spec.contexts;
      args.server.dispatch_threads = spec.dispatch_threads;
      args.server.policy.max_batch_size = spec.batch_size;
      args.server.policy.max_wait_us = spec.max_wait_us;
      args.server.queue_capacity = spec.queue_capacity;
      args.server.run_options.backend = core::Backend::kFast;
      args.server.run_options.pace_devices = true;
    }

    InProcessTarget target;
    if (!build_target(args, args.synth.models, target)) return 1;
    load::ServerTarget server_target(*target.server, target.images);
    const auto probe = load::make_probe(server_target, plan);

    std::printf("capacity search: %s, %zu device(s), backend %s%s, SLO p99 <= "
                "%.0f us, success >= %.2f, bracket [%.0f, %.0f] req/s\n",
                args.synth.models.front().c_str(), args.registry.devices,
                core::to_string(args.server.run_options.backend),
                args.server.run_options.pace_devices ? " (paced)" : "",
                args.slo.p99_us, args.slo.min_success, args.lo_rps,
                args.hi_rps);
    const auto measurement = load::measure_capacity(
        probe, args.slo, args.lo_rps, args.hi_rps, args.iterations);
    const auto& result = measurement.search;
    target.server->stop();

    std::printf("%-12s %12s %12s %10s %10s %s\n", "target req/s", "offered",
                "completed", "p50 us", "p99 us", "slo");
    for (const auto& p : result.probes) {
      std::printf("%-12.0f %12.1f %12.1f %10.1f %10.1f %s\n", p.target_rps,
                  p.offered_rps, p.completed_rps, p.p50_us, p.p99_us,
                  p.feasible ? "ok" : "VIOLATED");
    }
    std::printf("capacity: %.1f req/s under the SLO%s\n", result.capacity_rps,
                result.at_capacity ? "" : " (search hit --hi; lower bound only)");
    if (result.capacity_rps > 0.0) {
      const auto& v = measurement.validation;
      std::printf("validation @ %.0f req/s (0.6x capacity): completed %.1f "
                  "req/s, p50 %.1f us, p99 %.1f us\n",
                  v.target_rps, v.completed_rps, v.p50_us, v.p99_us);
    }

    if (!args.out.empty()) {
      load::BenchRow row;
      row.section = "capacity";
      row.label = load::smoke_label(args.registry.devices);
      row.devices = args.registry.devices;
      row.capacity_rps = result.capacity_rps;
      row.images_per_s = measurement.validation.completed_rps;
      row.p50_us = measurement.validation.p50_us;
      row.p99_us = measurement.validation.p99_us;
      load::write_bench_json(args.out, args.synth.models.front(),
                             plan.min_requests,
                             std::thread::hardware_concurrency(), {&row, 1},
                             0.0);
      std::printf("wrote %s\n", args.out.c_str());
    }
    return result.capacity_rps > 0.0 ? 0 : 1;
  }

  return usage();
}
