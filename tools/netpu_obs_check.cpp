// netpu-obs-check: validate observability artifacts written by netpu-serve.
//
//   netpu-obs-check --metrics metrics.prom   Prometheus text format 0.0.4
//   netpu-obs-check --trace trace.json       Chrome trace_event JSON
//
// Exits nonzero (with the offending line/event on stderr) if a file fails
// validation: duplicate TYPE declarations or samples, undeclared families,
// NaN/inf values, negative counters for metrics; structural JSON errors,
// missing name/ph/ts fields or unknown phases for traces. CI runs this
// against a fresh netpu-serve run so exposition regressions fail the build
// instead of silently corrupting dashboards.
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/metrics_exporter.hpp"

using namespace netpu;

namespace {

bool read_file(const std::string& path, std::string& out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: netpu-obs-check [--metrics FILE] [--trace FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* flag, std::string& out) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return true;
    };
    if (arg("--metrics", metrics_path) || arg("--trace", trace_path)) continue;
    return usage();
  }
  if (metrics_path.empty() && trace_path.empty()) return usage();

  if (!metrics_path.empty()) {
    std::string text;
    if (!read_file(metrics_path, text)) {
      std::fprintf(stderr, "cannot read %s\n", metrics_path.c_str());
      return 1;
    }
    if (auto s = obs::validate_prometheus(text); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", metrics_path.c_str(),
                   s.error().to_string().c_str());
      return 1;
    }
    std::printf("%s: valid Prometheus exposition\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    std::string json;
    if (!read_file(trace_path, json)) {
      std::fprintf(stderr, "cannot read %s\n", trace_path.c_str());
      return 1;
    }
    if (auto s = obs::validate_chrome_trace(json); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", trace_path.c_str(),
                   s.error().to_string().c_str());
      return 1;
    }
    std::printf("%s: valid Chrome trace_event JSON\n", trace_path.c_str());
  }
  return 0;
}
