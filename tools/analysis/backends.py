"""Token-stream backends for the NetPU-M analyzer.

Two producers of the token stream that `cpp_model` consumes:

  * builtin   — the pure-Python lexer in cpp_model.py. Always available,
                deterministic, the canonical gate backend.
  * libclang  — clang.cindex tokenization when the Python bindings are
                importable (CI installs and caches the wheel; dev boxes
                may not have it). Real preprocessor-grade lexing.

`auto` prefers libclang but only after a probe: the two backends must
produce identical (spelling, line) streams on a representative snippet.
If the probe fails — missing module, missing libclang.so, or divergent
tokens — auto falls back to builtin and records why, so an environment
without clang can never weaken or break the gate.
"""

from __future__ import annotations

import cpp_model

_PROBE_SNIPPET = """\
#include "core/fast_executor.hpp"
namespace netpu::probe {
struct Widget {
  void run(int n) {
    std::lock_guard<std::mutex> lock(mutex_);
    values_.push_back(n);  // growth on a member
  }
  std::mutex mutex_;  // guards values_
  std::vector<int> values_;
};
}  // namespace netpu::probe
"""


def _builtin_tokens(raw_text):
    return cpp_model.tokenize(cpp_model.strip_comments_keep_lines(raw_text))


def _libclang_tokens(raw_text, cindex):
    """Tokenize with clang.cindex, normalized to the builtin contract:
    comments dropped, preprocessor-directive lines dropped, string/char
    literals collapsed to empty quotes."""
    pp_lines = {
        i for i, line in enumerate(raw_text.split("\n"), start=1)
        if line.lstrip().startswith("#")
    }
    tu = cindex.TranslationUnit.from_source(
        "probe.cpp", args=["-std=c++17", "-fsyntax-only"],
        unsaved_files=[("probe.cpp", raw_text)],
        options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    out = []
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        line = tok.location.line
        if line in pp_lines:
            continue
        kind = tok.kind.name
        if kind == "COMMENT":
            continue
        text = tok.spelling
        if kind == "LITERAL" and text[:1] in "\"'" :
            text = text[0] * 2
        out.append(cpp_model.Token(text, line))
    return out


class Backend:
    """Resolved backend: name, a tokens(raw_text) callable, and the
    human-readable reason for the choice."""

    def __init__(self, name, tokens_fn, note):
        self.name = name
        self.tokens = tokens_fn
        self.note = note

    def build_model(self, path, raw_text):
        return cpp_model.build_file_model(path, raw_text,
                                          tokens=self.tokens(raw_text))


def resolve(requested):
    """requested in {'auto', 'builtin', 'libclang'} -> Backend.

    Raises RuntimeError only for an explicit `libclang` request that
    cannot be satisfied; `auto` never raises.
    """
    if requested == "builtin":
        return Backend("builtin", _builtin_tokens, "requested")

    probe_error = None
    try:
        from clang import cindex  # noqa: deferred, optional dependency
        lib_tokens = _libclang_tokens(_PROBE_SNIPPET, cindex)
        ref_tokens = _builtin_tokens(_PROBE_SNIPPET)
        got = [(t.text, t.line) for t in lib_tokens]
        want = [(t.text, t.line) for t in ref_tokens]
        if got != want:
            probe_error = "probe token streams diverge"
        else:
            return Backend("libclang",
                           lambda text: _libclang_tokens(text, cindex),
                           "probe passed")
    except ImportError as e:
        probe_error = f"clang.cindex not importable: {e}"
    except Exception as e:  # libclang.so missing, parse failure, ...
        probe_error = f"libclang probe failed: {e}"

    if requested == "libclang":
        raise RuntimeError(f"libclang backend unavailable: {probe_error}")
    return Backend("builtin", _builtin_tokens,
                   f"fallback ({probe_error})")
