"""compile_commands.json loading for the NetPU-M analyzer.

The analyzer is *database-driven*: the set of translation units it reasons
about comes from the build's exported compile_commands.json, not from a
directory glob, so the gate analyzes exactly what ships in the binaries.
Headers are pulled in per-TU via the include graph.

Exit-code contract (mirrors tools/bench_gate.py): a malformed, unreadable,
or *empty* database is exit 2 — "nothing analyzed" must never read as
"no findings".
"""

from __future__ import annotations

import json
import os


class CompileDbError(Exception):
    """Database unusable; caller maps this to exit code 2."""


def load_tu_paths(db_path, root):
    """Source files listed in compile_commands.json, restricted to
    first-party code under `root` (system/third-party TUs are ignored),
    absolute, deduplicated, sorted.

    Raises CompileDbError on missing/malformed/empty databases and when
    every listed file is missing on disk (a stale database analyzes
    nothing and must not pass).
    """
    try:
        with open(db_path, "r", encoding="utf-8") as fh:
            entries = json.load(fh)
    except OSError as e:
        raise CompileDbError(f"cannot read {db_path}: {e}")
    except ValueError as e:
        raise CompileDbError(f"{db_path} is not valid JSON: {e}")
    if not isinstance(entries, list):
        raise CompileDbError(f"{db_path}: top level must be a JSON array")
    if not entries:
        raise CompileDbError(f"{db_path}: empty database — nothing to analyze")

    root = os.path.abspath(root)
    paths = set()
    for idx, entry in enumerate(entries):
        if not isinstance(entry, dict) or "file" not in entry:
            raise CompileDbError(
                f"{db_path}: entry {idx} lacks a 'file' field")
        f = entry["file"]
        if not os.path.isabs(f):
            f = os.path.join(entry.get("directory", root), f)
        f = os.path.abspath(f)
        if f.startswith(root + os.sep):
            paths.add(f)

    if not paths:
        raise CompileDbError(
            f"{db_path}: no translation units under {root}")
    existing = sorted(p for p in paths if os.path.isfile(p))
    if not existing:
        raise CompileDbError(
            f"{db_path}: stale database — none of the listed files exist")
    return existing
