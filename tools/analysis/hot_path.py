"""Hot-path allocation reachability.

Computes the call graph reachable from the serve hot roots —

  * core::FastExecutor::run_into   (the zero-alloc fast backend entry)
  * engine::Session::run_plan      (multi-device / paced execution)
  * net::NetServer::event_loop     (the network thread)

— and fails if any function on a reachable path contains an allocation
site: `new`, `malloc`-family calls, `make_unique`/`make_shared`,
`std::string` construction / `std::to_string`, or growth calls
(`push_back`/`insert`/`resize`/...) on *function-local* containers.

Growth on members, parameters, statics and thread_locals is allowed by
rule: the repo's steady-state discipline (PR 8) is that such buffers
retain capacity across requests, so growth there amortizes to zero — the
`fast_alloc_test` runtime gate holds the rule honest. A fresh local
container growing per request cannot amortize and is always a finding.

Waivers come from `tools/analysis/hot_path_allowlist.txt`, audited
entries of the form `file.cpp:Function::qualname:category -- reason`.
A stale entry (matching nothing) is itself an error so the allowlist
can only shrink honestly. Inline `// analyzer:allow hot-path -- reason`
waives a single line for cases too local for the allowlist.

Call resolution here is the *union* of plausible targets (the opposite
bias from lock_order.py): missing an edge would silently un-prove the
zero-alloc property, while an extra edge at worst flags a function that
then gets a justified allowlist entry.
"""

from __future__ import annotations

import os
import re

from findings import Finding, allow_reasons

CHECK = "hot-path"

HOT_ROOTS = (
    "core::FastExecutor::run_into",
    "engine::Session::run_plan",
    "net::NetServer::event_loop",
)

# Leaf callees known not to allocate that the union resolver would
# otherwise chase into unrelated same-name functions.
_IGNORED_CALLEES = {
    # std/compiler intrinsics the lexer sees as plain calls
    "min", "max", "swap", "move", "size", "data", "empty", "begin", "end",
    "clear", "count", "find", "at", "get", "front", "back", "load",
    "store", "exchange", "compare_exchange_weak", "compare_exchange_strong",
    "fetch_add", "fetch_sub", "wait", "notify_one", "notify_all", "lock",
    "unlock", "try_lock", "memcpy", "memset", "memmove", "abs",
    "duration_cast", "now", "time_since_epoch", "str", "c_str", "substr",
    "compare", "length", "capacity", "reset", "release", "popcount",
}


def load_allowlist(path):
    """[(file_suffix, func_pattern, category, reason, lineno)] from the
    audited allowlist. Lines: `<file> <qualname> <category> -- <reason>`
    (whitespace-separated — qualified names contain colons)."""
    entries = []
    if not os.path.isfile(path):
        return entries
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if "--" not in line:
                raise ValueError(
                    f"{path}:{lineno}: entry lacks a `-- reason`")
            spec, reason = line.split("--", 1)
            if not reason.strip():
                raise ValueError(
                    f"{path}:{lineno}: empty `-- reason` justification")
            parts = spec.split()
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{lineno}: want `<file> <qualname> <category>`")
            entries.append((parts[0], parts[1], parts[2],
                            reason.strip(), lineno))
    return entries


def _alloc_findings_for(func, model, allowlist, used_entries):
    """Findings for allocation events inside one function."""
    out = []
    waived = allow_reasons(model, CHECK)
    for e in func.events:
        if e.kind != "alloc":
            continue
        category, detail = e.payload
        if category == "growth":
            base = detail.split(".")[0] if "." in detail else None
            if base is None or base not in func.locals:
                continue  # member/param/persistent growth: allowed by rule
        if e.line in waived:
            if waived[e.line] is None:
                out.append(Finding(
                    CHECK, model.path, e.line,
                    "analyzer:allow without `-- reason` justification"))
            continue
        entry = _match_allowlist(allowlist, model.path, func.qualname,
                                 category)
        if entry is not None:
            used_entries.add(entry)
            continue
        out.append(Finding(
            CHECK, model.path, e.line,
            f"{func.qualname}: {category} allocation ({detail}) reachable "
            f"from a hot root"))
    return out


def _match_allowlist(allowlist, path, qualname, category):
    for entry in allowlist:
        file_sfx, pat, cat, _reason, _lineno = entry
        if cat not in (category, "*"):
            continue
        if not path.endswith(file_sfx):
            continue
        if re.fullmatch(pat.replace("*", ".*"), qualname):
            return entry
    return None


def _build_call_graph(models):
    """qualname -> Function; name -> [Function]; and per-function callee
    names (union resolution happens at traversal time)."""
    by_qual = {}
    by_name = {}
    for model in models:
        for func in model.functions:
            by_qual.setdefault(func.qualname, func)
            by_name.setdefault(func.name, []).append(func)
    return by_qual, by_name


def _resolve_union(callee, is_method, caller, by_name):
    name = callee.split("::")[-1]
    if name in _IGNORED_CALLEES:
        return []
    cands = by_name.get(name, [])
    if not cands:
        return []
    if "::" in callee:
        qual_matches = [f for f in cands if f.qualname.endswith(callee)]
        if qual_matches:
            return qual_matches
    # Unqualified calls (and `x.f()` where x's type is unknown): C++ name
    # lookup finds a same-class member first, so prefer it — the union of
    # every same-name method across the tree would fabricate reachability
    # through unrelated classes.
    if caller.cls:
        same_cls = [f for f in cands if f.cls == caller.cls]
        if same_cls:
            return same_cls
    return cands  # union: over-approximate reachability


def analyze(models, allowlist_path):
    try:
        allowlist = load_allowlist(allowlist_path)
    except ValueError as e:
        return [Finding(CHECK, allowlist_path, 0, str(e))]

    by_qual, by_name = _build_call_graph(models)
    model_of = {}
    for model in models:
        for func in model.functions:
            model_of[id(func)] = model

    roots = []
    for root in HOT_ROOTS:
        func = by_qual.get(root)
        if func is None:  # qualnames carry the netpu:: prefix in-tree
            for qual, cand in by_qual.items():
                if qual == root or qual.endswith("::" + root):
                    func = cand
                    break
        if func is None:
            # A missing root means the check silently proves nothing.
            return [Finding(
                CHECK, "", 0,
                f"hot root `{root}` not found — update HOT_ROOTS in "
                f"tools/analysis/hot_path.py if it was renamed")]
        roots.append(func)

    # BFS over the union call graph, remembering one witness path each.
    reach = {}
    frontier = []
    for func in roots:
        reach[id(func)] = [func.qualname]
        frontier.append(func)
    while frontier:
        func = frontier.pop()
        for e in func.events:
            if e.kind != "call":
                continue
            callee, is_method = e.payload
            for target in _resolve_union(callee, is_method, func, by_name):
                if id(target) in reach:
                    continue
                reach[id(target)] = reach[id(func)] + [target.qualname]
                frontier.append(target)

    findings = []
    used_entries = set()
    for model in models:
        for func in model.functions:
            if id(func) not in reach:
                continue
            for f in _alloc_findings_for(func, model, allowlist,
                                         used_entries):
                witness = reach[id(func)]
                if len(witness) > 1:
                    f.message += "  [via " + " -> ".join(witness) + "]"
                findings.append(f)

    for entry in allowlist:
        if entry not in used_entries:
            file_sfx, pat, cat, _reason, lineno = entry
            findings.append(Finding(
                CHECK, allowlist_path, lineno,
                f"stale allowlist entry `{file_sfx}:{pat}:{cat}` matched "
                f"nothing — remove it"))
    return findings


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

_SEEDED_BAD = """\
namespace core {
struct FastExecutor {
  void run_into(int x) {
    std::vector<int> staging;
    staging.push_back(x);
    helper(x);
  }
  void helper(int x) {}
};
}  // namespace core
namespace engine {
struct Session {
  void run_plan() {}
};
}  // namespace engine
namespace net {
struct NetServer {
  void event_loop() {}
};
}  // namespace net
"""

_SEEDED_OK = """\
namespace core {
struct FastExecutor {
  void run_into(int x, std::vector<int>& out) {
    out.push_back(x);
    scratch_.push_back(x);
    static thread_local std::vector<int> warm;
    warm.push_back(x);
  }
  std::vector<int> scratch_;
};
}  // namespace core
namespace engine {
struct Session {
  void run_plan() {}
};
}  // namespace engine
namespace net {
struct NetServer {
  void event_loop() {}
};
}  // namespace net
"""

_SEEDED_DEEP = """\
namespace core {
struct FastExecutor {
  void run_into(int x) { stage(x); }
  void stage(int x) { finalize(x); }
  void finalize(int x) {
    auto p = std::make_unique<int>(x);
  }
};
}  // namespace core
namespace engine {
struct Session {
  void run_plan() {}
};
}  // namespace engine
namespace net {
struct NetServer {
  void event_loop() {}
};
}  // namespace net
"""


def self_test():
    import cpp_model
    msgs = []
    ok = True

    bad = analyze([cpp_model.build_file_model("seed_bad.cpp", _SEEDED_BAD)],
                  "/nonexistent-allowlist")
    if any("growth" in f.message for f in bad):
        msgs.append("seeded local-vector push in hot function detected: OK")
    else:
        ok = False
        msgs.append("FAIL: seeded hot-path growth NOT detected: "
                    + "; ".join(f.message for f in bad))

    good = analyze([cpp_model.build_file_model("seed_ok.cpp", _SEEDED_OK)],
                   "/nonexistent-allowlist")
    if not good:
        msgs.append("member/param/thread_local growth allowed: OK")
    else:
        ok = False
        msgs.append("FAIL: clean steady-state growth flagged: "
                    + "; ".join(f.message for f in good))

    deep = analyze([cpp_model.build_file_model("seed_deep.cpp",
                                               _SEEDED_DEEP)],
                   "/nonexistent-allowlist")
    if any("make-smart" in f.message and "via" in f.message for f in deep):
        msgs.append("transitive make_unique two calls deep detected: OK")
    else:
        ok = False
        msgs.append("FAIL: transitive allocation NOT detected: "
                    + "; ".join(f.message for f in deep))
    return ok, msgs
