"""Layering enforcement: a declared layer DAG over src/ subsystems with
include-level and symbol-reference-level violation detection.

The DAG below is the architecture contract: each `src/<layer>/` directory
lists the layers it may depend on. Adding a dependency means editing this
table in the same PR — the diff makes the architectural decision visible
to review instead of letting an `#include` slip it in. The table is
verified acyclic at load time, so the contract itself can't rot into a
cycle.

Detection is two-level:
  * include-level — a quoted `#include "other_layer/...."` not in the
    allowed set;
  * symbol-level  — a `other_layer::` qualified reference (all first-party
    code lives in `netpu::<layer>`), which also catches forward-declared
    cross-layer use that never includes a header.

Code outside src/ (tools, bench, tests, examples) sits above every layer
and may use anything.
"""

from __future__ import annotations

from findings import Finding, allow_reasons
from repo_files import src_layer

CHECK = "layering"

# Layer -> layers it may depend on (its own layer is implicitly allowed).
# Keep entries sorted; keep the table a DAG (verified by _check_dag).
ALLOWED_DEPS = {
    "common":   set(),
    "hw":       {"common"},
    "sim":      {"common"},
    "obs":      {"common"},
    "nn":       {"common", "hw"},
    "loadable": {"common", "hw", "nn"},
    "data":     {"common", "hw", "nn"},
    "baseline": {"common", "hw", "nn"},
    "core":     {"common", "hw", "loadable", "nn", "sim"},
    "runtime":  {"common", "core", "hw", "loadable", "nn", "sim"},
    "engine":   {"common", "core", "hw", "loadable", "nn", "runtime",
                 "sim"},
    "serve":    {"common", "core", "engine", "hw", "loadable", "nn", "obs",
                 "runtime", "sim"},
    "net":      {"common", "core", "engine", "hw", "loadable", "nn", "obs",
                 "runtime", "serve", "sim"},
    "load":     {"common", "core", "engine", "hw", "loadable", "net", "nn",
                 "obs", "runtime", "serve", "sim"},
}

LAYERS = set(ALLOWED_DEPS)


def _check_dag(table):
    """Cycle in the declared table (should be impossible) -> list of msgs."""
    msgs = []
    state = {}

    def visit(node, stack):
        state[node] = "gray"
        for dep in sorted(table.get(node, ())):
            if dep not in table:
                msgs.append(f"layer `{node}` allows unknown layer `{dep}`")
                continue
            if state.get(dep) == "gray":
                msgs.append("declared layer table has a cycle: "
                            + " -> ".join(stack + [node, dep]))
            elif state.get(dep) is None:
                visit(dep, stack + [node])
        state[node] = "black"

    for node in sorted(table):
        if state.get(node) is None:
            visit(node, [])
    return msgs


def analyze(models, root):
    findings = [Finding(CHECK, "tools/analysis/layering.py", 0, msg)
                for msg in _check_dag(ALLOWED_DEPS)]

    for model in models:
        layer = src_layer(root, model.path)
        if layer is None or layer not in LAYERS:
            continue  # above the DAG (tools/bench/tests) or unknown dir
        allowed = ALLOWED_DEPS[layer] | {layer}
        waived = allow_reasons(model, CHECK)

        for line, inc in model.includes:
            head = inc.split("/", 1)[0]
            if head in LAYERS and head not in allowed:
                if line in waived and waived[line] is not None:
                    continue
                findings.append(Finding(
                    CHECK, model.path, line,
                    f"src/{layer} may not include src/{head} "
                    f'(#include "{inc}"); allowed: '
                    + ", ".join(sorted(allowed - {layer}))))

        seen_symbol = set()
        for line, ref in model.ns_refs:
            if ref in LAYERS and ref not in allowed:
                if line in waived and waived[line] is not None:
                    continue
                key = (ref, line)
                if key in seen_symbol:
                    continue
                seen_symbol.add(key)
                findings.append(Finding(
                    CHECK, model.path, line,
                    f"src/{layer} references `{ref}::` — not an allowed "
                    f"dependency"))
    return findings


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

_SEEDED_BAD = """\
#include "serve/server.hpp"
namespace netpu::hw {
inline int poke() { return serve::kMaxBodyBytes; }
}  // namespace netpu::hw
"""

_SEEDED_OK = """\
#include "common/status.hpp"
namespace netpu::hw {
inline int fine() { return common::kOk; }
}  // namespace netpu::hw
"""


def self_test():
    import cpp_model
    msgs = []
    ok = True

    dag_msgs = _check_dag(ALLOWED_DEPS)
    if not dag_msgs:
        msgs.append("declared layer table is a DAG: OK")
    else:
        ok = False
        msgs.append("FAIL: " + "; ".join(dag_msgs))

    bad_model = cpp_model.build_file_model("/r/src/hw/bad.hpp", _SEEDED_BAD)
    bad = analyze([bad_model], "/r")
    if (any("include" in f.message for f in bad)
            and any("references" in f.message for f in bad)):
        msgs.append("seeded upward include + symbol ref detected: OK")
    else:
        ok = False
        msgs.append("FAIL: seeded upward dependency NOT detected: "
                    + "; ".join(f.message for f in bad))

    good_model = cpp_model.build_file_model("/r/src/hw/ok.hpp", _SEEDED_OK)
    good = analyze([good_model], "/r")
    if not good:
        msgs.append("downward include produces no findings: OK")
    else:
        ok = False
        msgs.append("FAIL: clean file flagged: "
                    + "; ".join(f.message for f in good))
    return ok, msgs
