#!/usr/bin/env python3
"""netpu-analyzer: static invariant checker for the NetPU-M serving stack.

Three checks over the first-party C++ tree (driven by the build's
compile_commands.json so the gate covers exactly what ships):

  lock-order   mutex-acquisition-order graph must be acyclic
  hot-path     no allocation reachable from the serve hot roots
  layering     declared layer DAG enforced at include + symbol level

Usage:
  netpu_analyzer.py --compile-commands build/compile_commands.json
  netpu_analyzer.py --check layering --compile-commands ...
  netpu_analyzer.py --self-test [lock-order|hot-path|layering]

Exit codes (mirrors tools/bench_gate.py):
  0  clean (or self-test seeds all detected)
  1  findings (or a self-test seed NOT detected)
  2  compile_commands.json missing/malformed/empty — nothing analyzed
     must never read as "no findings"
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import backends
import compile_db
import hot_path
import layering
import lock_order
import repo_files

CHECKS = ("lock-order", "hot-path", "layering")
DEFAULT_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))


def run_self_test(which):
    modules = {
        "lock-order": lock_order,
        "hot-path": hot_path,
        "layering": layering,
    }
    names = [which] if which else list(CHECKS)
    all_ok = True
    for name in names:
        ok, msgs = modules[name].self_test()
        for msg in msgs:
            print(f"[self-test:{name}] {msg}")
        all_ok = all_ok and ok
    print("self-test: " + ("all seeded violations detected"
                           if all_ok else "FAILED"))
    return 0 if all_ok else 1


def build_models(root, db_path, backend_name):
    """-> (models, backend) for all src/ C++ files; validates the compile
    database first (CompileDbError propagates to exit 2)."""
    tu_paths = compile_db.load_tu_paths(db_path, root)
    files = repo_files.find_files(root, subdirs=("src",))
    file_set = set(files)
    for tu in tu_paths:
        # Any src/ TU the build compiles but the walk missed (generated
        # sources, unusual extensions) still gets analyzed.
        if repo_files.src_layer(root, tu) is not None and tu not in file_set:
            files.append(tu)
            file_set.add(tu)

    backend = backends.resolve(backend_name)
    models = []
    for path in sorted(files):
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            raw = fh.read()
        models.append(backend.build_model(path, raw))
    return models, backend


def main(argv=None):
    ap = argparse.ArgumentParser(prog="netpu_analyzer")
    ap.add_argument("--root", default=DEFAULT_ROOT)
    ap.add_argument("--compile-commands", default=None,
                    help="path to the build's compile_commands.json")
    ap.add_argument("--check", choices=("all",) + CHECKS, default="all")
    ap.add_argument("--backend", choices=("auto", "builtin", "libclang"),
                    default="auto")
    ap.add_argument("--self-test", nargs="?", const="", default=None,
                    metavar="CHECK",
                    help="run seeded-violation self tests and exit")
    ap.add_argument("--allowlist", default=None,
                    help="hot-path allowlist (default: next to this script)")
    args = ap.parse_args(argv)

    if args.self_test is not None:
        which = args.self_test or None
        if which is not None and which not in CHECKS:
            print(f"unknown self-test check: {which}", file=sys.stderr)
            return 2
        return run_self_test(which)

    if not args.compile_commands:
        print("--compile-commands is required (or use --self-test)",
              file=sys.stderr)
        return 2

    root = os.path.abspath(args.root)
    try:
        models, backend = build_models(root, args.compile_commands,
                                       args.backend)
    except compile_db.CompileDbError as e:
        print(f"netpu-analyzer: {e}", file=sys.stderr)
        return 2
    except RuntimeError as e:  # explicit --backend libclang unavailable
        print(f"netpu-analyzer: {e}", file=sys.stderr)
        return 2

    allowlist = args.allowlist or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "hot_path_allowlist.txt")

    findings = []
    ran = []
    if args.check in ("all", "lock-order"):
        findings += lock_order.analyze(models)
        ran.append("lock-order")
    if args.check in ("all", "hot-path"):
        findings += hot_path.analyze(models, allowlist)
        ran.append("hot-path")
    if args.check in ("all", "layering"):
        findings += layering.analyze(models, root)
        ran.append("layering")

    for f in findings:
        print(f.render(root))
    print(f"netpu-analyzer: backend={backend.name} ({backend.note}); "
          f"{len(models)} files; checks: {', '.join(ran)}; "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
