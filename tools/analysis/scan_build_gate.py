#!/usr/bin/env python3
"""Gate over clang static analyzer (scan-build) plist output.

CI runs `scan-build --plist-output <dir> cmake --build ...` and then this
script over the result directory. Reports are filtered against
`scan_build_suppressions.txt`; anything unsuppressed fails the gate.

Exit codes (mirrors netpu_analyzer.py / bench_gate.py):
  0  no unsuppressed reports
  1  unsuppressed reports
  2  no plist files found / unreadable — an analyzer that analyzed nothing
     must never read as "clean"

Suppression file lines: `<file-suffix> <checker-or-*> -- <reason>`.
A stale suppression (matching no report) is an error so the file can only
shrink honestly; the file ships empty.
"""

from __future__ import annotations

import argparse
import os
import plistlib
import sys


def load_suppressions(path):
    """[(file_suffix, checker, reason, lineno)]; empty-reason is an error."""
    entries = []
    if not os.path.isfile(path):
        return entries
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if "--" not in line:
                raise ValueError(f"{path}:{lineno}: lacks a `-- reason`")
            spec, reason = line.split("--", 1)
            if not reason.strip():
                raise ValueError(f"{path}:{lineno}: empty reason")
            parts = spec.split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{lineno}: want `<file-suffix> <checker>`")
            entries.append((parts[0], parts[1], reason.strip(), lineno))
    return entries


def collect_reports(plist_dir):
    """[(file, line, checker, description)] from every plist under dir."""
    reports = []
    plists = []
    for dirpath, _, names in os.walk(plist_dir):
        for name in sorted(names):
            if name.endswith(".plist"):
                plists.append(os.path.join(dirpath, name))
    if not plists:
        return None, 0
    for path in sorted(plists):
        try:
            with open(path, "rb") as fh:
                data = plistlib.load(fh)
        except Exception as e:
            print(f"scan-build-gate: unreadable plist {path}: {e}",
                  file=sys.stderr)
            continue
        files = data.get("files", [])
        for diag in data.get("diagnostics", []):
            loc = diag.get("location", {})
            file_idx = loc.get("file", 0)
            fname = files[file_idx] if file_idx < len(files) else "?"
            reports.append((
                fname, loc.get("line", 0),
                diag.get("check_name", diag.get("type", "unknown")),
                diag.get("description", "")))
    return reports, len(plists)


def main(argv=None):
    ap = argparse.ArgumentParser(prog="scan_build_gate")
    ap.add_argument("plist_dir", nargs="?",
                    help="directory scan-build wrote plists into")
    ap.add_argument("--suppressions", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "scan_build_suppressions.txt"))
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.plist_dir:
        print("scan-build-gate: plist_dir required", file=sys.stderr)
        return 2

    try:
        suppressions = load_suppressions(args.suppressions)
    except ValueError as e:
        print(f"scan-build-gate: {e}", file=sys.stderr)
        return 1

    reports, plist_count = collect_reports(args.plist_dir)
    if reports is None:
        print(f"scan-build-gate: no plist files under {args.plist_dir} — "
              f"nothing analyzed", file=sys.stderr)
        return 2

    used = set()
    failing = []
    for fname, line, checker, desc in reports:
        entry = None
        for s in suppressions:
            sfx, chk, _reason, _ln = s
            if fname.endswith(sfx) and chk in (checker, "*"):
                entry = s
                break
        if entry is not None:
            used.add(entry)
            continue
        failing.append((fname, line, checker, desc))

    for fname, line, checker, desc in failing:
        print(f"{fname}:{line}: [{checker}] {desc}")
    stale = [s for s in suppressions if s not in used]
    for sfx, chk, _reason, ln in stale:
        print(f"{args.suppressions}:{ln}: stale suppression "
              f"`{sfx} {chk}` matched nothing — remove it")
    print(f"scan-build-gate: {plist_count} plist(s), {len(reports)} "
          f"report(s), {len(failing)} unsuppressed, {len(stale)} stale "
          f"suppression(s)")
    return 1 if failing or stale else 0


def self_test():
    """Seed a plist with one diagnostic; the gate must fail on it, pass
    once suppressed, and exit 2 on an empty directory."""
    import tempfile
    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        plist_dir = os.path.join(tmp, "out")
        os.makedirs(plist_dir)
        with open(os.path.join(plist_dir, "report.plist"), "wb") as fh:
            plistlib.dump({
                "files": ["/repo/src/core/netpu.cpp"],
                "diagnostics": [{
                    "location": {"file": 0, "line": 42},
                    "check_name": "core.NullDereference",
                    "description": "seeded null dereference",
                }],
            }, fh)
        empty_sup = os.path.join(tmp, "empty.txt")
        open(empty_sup, "w").close()
        rc = main([plist_dir, "--suppressions", empty_sup])
        if rc == 1:
            print("[self-test] seeded diagnostic fails the gate: OK")
        else:
            ok = False
            print(f"[self-test] FAIL: seeded diagnostic gave rc {rc}")

        sup = os.path.join(tmp, "sup.txt")
        with open(sup, "w") as fh:
            fh.write("src/core/netpu.cpp core.NullDereference -- seeded\n")
        rc = main([plist_dir, "--suppressions", sup])
        if rc == 0:
            print("[self-test] suppressed diagnostic passes: OK")
        else:
            ok = False
            print(f"[self-test] FAIL: suppressed diagnostic gave rc {rc}")

        empty_dir = os.path.join(tmp, "none")
        os.makedirs(empty_dir)
        rc = main([empty_dir, "--suppressions", empty_sup])
        if rc == 2:
            print("[self-test] empty plist dir exits 2: OK")
        else:
            ok = False
            print(f"[self-test] FAIL: empty plist dir gave rc {rc}")
    print("scan-build-gate self-test: " + ("OK" if ok else "FAILED"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
