"""Lexical C++ source model for the NetPU-M static analyzer.

Builds, per file, a structural model that the three checks (lock-order,
hot-path allocations, layering) consume:

  * includes               `#include "x/y.hpp"` directives with line numbers
  * functions              definitions with qualified names, body line
                           ranges, and an event stream (lock acquisitions,
                           calls, allocation sites) with scope depths
  * namespace references   `layer::` tokens for symbol-level layering
  * annotations            `// analyzer:...` markers (see below)

The model is deliberately a *lexer*, not a compiler: it tokenizes stripped
source and recognizes the project's idioms (Google-style definitions, RAII
lock guards, `_into` buffer reuse). That makes it dependency-free — it runs
wherever Python runs, with no libclang wheel and no clang binary — at the
cost of approximating name resolution. The checks are written so the
approximation errs toward *more* reachability (hot-path) and *fewer*
merged lock identities (lock-order), keeping both sound against their
failure modes (a missed allocation / a fabricated deadlock cycle).

Annotations (in comments, anywhere in the tree):

  // analyzer:acquire <lock-name>     non-RAII lock protocol begins here
  // analyzer:release <lock-name>     ... and ends here
  // analyzer:allow <category> -- <reason>
                                      waive the finding on the next line
                                      (or this line, if trailing)
"""

from __future__ import annotations

import re

# ---------------------------------------------------------------------------
# Text preparation
# ---------------------------------------------------------------------------

def strip_comments_keep_lines(text):
    """Remove // and /* */ comment bodies and string/char contents while
    preserving line structure. String literals are left as empty quotes so
    downstream token patterns (e.g. string concatenation) can still see that
    a literal sat there."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif ch in "\"'":
            quote = ch
            out.append(ch)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 2
                    continue
                if text[i] == "\n":  # unterminated (rare); keep structure
                    break
                i += 1
            if i < n and text[i] == quote:
                out.append(quote)
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.M)


def parse_includes(raw_text):
    """[(line, path)] for quoted includes, from the *raw* text (the stripper
    empties string literals, which would eat the path)."""
    out = []
    for m in INCLUDE_RE.finditer(raw_text):
        line = raw_text.count("\n", 0, m.start()) + 1
        out.append((line, m.group(1)))
    return out


ANNOTATION_RE = re.compile(
    r"//\s*analyzer:(acquire|release|allow|calls)\s+([^\n]*)")


def parse_annotations(raw_text):
    """line -> [(verb, argument)] from `// analyzer:<verb> ...` comments."""
    out = {}
    for lineno, line in enumerate(raw_text.split("\n"), start=1):
        for m in ANNOTATION_RE.finditer(line):
            arg = m.group(2).strip()
            out.setdefault(lineno, []).append((m.group(1), arg))
    return out


# ---------------------------------------------------------------------------
# Tokenizer (builtin backend)
# ---------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"          # identifier / keyword
    r"|\d[\dA-Za-z_.']*"               # number (incl. hex/suffix/separators)
    r"|::|->\*?|\.\*|<<=|>>=|<=|>=|==|!=|&&|\|\||\+\+|--|\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<|>>"
    r"|\"\"|''"                        # emptied literals from the stripper
    r"|[{}()\[\];,<>=+\-*/%!&|^~?:.#\"']")


class Token:
    __slots__ = ("text", "line")

    def __init__(self, text, line):
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.text!r}@{self.line}"


def tokenize(stripped_text):
    """Token stream over stripped text. Preprocessor lines (other than the
    includes already captured from raw text) are dropped entirely so `#define`
    bodies can't masquerade as code."""
    tokens = []
    for lineno, line in enumerate(stripped_text.split("\n"), start=1):
        if line.lstrip().startswith("#"):
            continue
        for m in TOKEN_RE.finditer(line):
            tokens.append(Token(m.group(0), lineno))
    return tokens


KEYWORDS = {
    "if", "for", "while", "switch", "return", "case", "default", "do",
    "else", "break", "continue", "goto", "sizeof", "alignof", "decltype",
    "new", "delete", "this", "nullptr", "true", "false", "const",
    "constexpr", "consteval", "constinit", "static", "thread_local",
    "mutable", "volatile", "inline", "extern", "register", "typedef",
    "using", "namespace", "class", "struct", "union", "enum", "template",
    "typename", "public", "private", "protected", "friend", "virtual",
    "override", "final", "noexcept", "throw", "try", "catch", "operator",
    "explicit", "auto", "void", "bool", "char", "short", "int", "long",
    "float", "double", "unsigned", "signed", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "static_assert", "co_await",
    "co_return", "co_yield", "requires", "concept", "export", "asm",
}

GUARD_TEMPLATES = {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"}

GROWTH_METHODS = {
    "push_back", "emplace_back", "push_front", "emplace_front", "insert",
    "emplace", "resize", "reserve", "assign", "append",
}

CONTAINER_TYPES = {
    "vector", "string", "deque", "list", "map", "multimap", "set",
    "unordered_map", "unordered_set", "function", "ostringstream",
    "stringstream", "basic_string", "queue", "priority_queue",
}

ALLOC_FUNCTIONS = {"malloc", "calloc", "realloc", "strdup", "aligned_alloc"}
SMART_MAKERS = {"make_unique", "make_shared"}


# ---------------------------------------------------------------------------
# Events and model records
# ---------------------------------------------------------------------------

class Event:
    """One occurrence inside a function body.

    kind:
      acquire   payload = (lock_exprs tuple, guard_var, simultaneous: bool)
      ann_acquire / ann_release   payload = lock name (annotation protocol)
      call      payload = (callee_text, is_method)
      alloc     payload = (category, detail)
    """
    __slots__ = ("kind", "line", "depth", "payload")

    def __init__(self, kind, line, depth, payload):
        self.kind = kind
        self.line = line
        self.depth = depth
        self.payload = payload

    def __repr__(self):
        return f"Event({self.kind},{self.payload}@{self.line} d{self.depth})"


class Function:
    __slots__ = ("name", "qualname", "cls", "start_line", "end_line",
                 "params", "locals", "persistent_locals", "events", "path")

    def __init__(self, name, qualname, cls, start_line, path):
        self.name = name
        self.qualname = qualname
        self.cls = cls            # qualified class name or "" for free funcs
        self.start_line = start_line
        self.end_line = start_line
        self.params = set()
        self.locals = set()            # per-call lifetime
        self.persistent_locals = set() # static / thread_local
        self.events = []
        self.path = ""


class FileModel:
    __slots__ = ("path", "includes", "functions", "ns_refs", "annotations")

    def __init__(self, path):
        self.path = path
        self.includes = []
        self.functions = []
        self.ns_refs = []
        self.annotations = {}


# ---------------------------------------------------------------------------
# Structural walk
# ---------------------------------------------------------------------------

_SIG_TAIL_OK = {"const", "noexcept", "override", "final", "try", "&", "&&",
                ">", "::", ",", ")"}


def _match_paren_back(tokens, close_idx):
    """Index of the '(' matching tokens[close_idx] == ')'."""
    depth = 0
    for i in range(close_idx, -1, -1):
        t = tokens[i].text
        if t == ")":
            depth += 1
        elif t == "(":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _function_signature(tokens, sig_lo, sig_hi):
    """If tokens[sig_lo:sig_hi] ends like a function definition header,
    return (name, class_chain, param_names); else None."""
    i = sig_hi - 1
    # Skip trailer: const noexcept(...) override -> type, etc.
    arrow_guard = 0
    while i > sig_lo:
        t = tokens[i].text
        if t == ")":
            # could be noexcept(...) / the parameter list itself
            open_i = _match_paren_back(tokens, i)
            if open_i <= sig_lo:
                return None
            before = tokens[open_i - 1].text
            if before == "noexcept":
                i = open_i - 1
                continue
            # Parameter list candidate: name token right before '('
            name_i = open_i - 1
            name = tokens[name_i].text
            if name in ("operator",):
                name = "operator()"
            elif not re.match(r"[A-Za-z_]", name):
                # operator+, operator==, ... : walk back to 'operator'
                j = name_i
                while j > sig_lo and tokens[j].text != "operator":
                    j -= 1
                if tokens[j].text != "operator":
                    return None
                name = "operator" + "".join(
                    tk.text for tk in tokens[j + 1:name_i + 1])
                name_i = j
            if name in KEYWORDS and name not in ("operator()",):
                return None
            # Class qualification chain: ... A :: B :: name
            chain = []
            j = name_i - 1
            while j - 1 > sig_lo and tokens[j].text == "::" and re.match(
                    r"[A-Za-z_]", tokens[j - 1].text):
                chain.insert(0, tokens[j - 1].text)
                j -= 2
            # There must be a return type / ctor context before the name for
            # a definition; a bare `name(...)` mid-statement is a call. The
            # caller only hands us namespace/class-scope statements, so
            # accept.
            params = _param_names(tokens, open_i, i)
            return name, chain, params
        if t in _SIG_TAIL_OK or re.match(r"[A-Za-z_>\]]", t):
            if t == ">":
                arrow_guard += 1
                if arrow_guard > 64:
                    return None
            i -= 1
            continue
        return None
    return None


def _param_names(tokens, open_i, close_i):
    """Best-effort parameter names of the list in tokens(open_i..close_i)."""
    names = set()
    depth = 0
    current = []
    for k in range(open_i + 1, close_i):
        t = tokens[k].text
        if t in "(<[{":
            depth += 1
        elif t in ")>]}":
            depth -= 1
        if t == "," and depth == 0:
            _param_from(current, names)
            current = []
        else:
            current.append(tokens[k])
    _param_from(current, names)
    return names


def _param_from(toks, names):
    # Strip a default argument, then take the last identifier.
    cut = len(toks)
    depth = 0
    for k, tk in enumerate(toks):
        if tk.text in "(<[{":
            depth += 1
        elif tk.text in ")>]}":
            depth -= 1
        elif tk.text == "=" and depth == 0:
            cut = k
            break
    for tk in reversed(toks[:cut]):
        if re.match(r"[A-Za-z_]", tk.text) and tk.text not in KEYWORDS:
            names.add(tk.text)
            return


class _Scope:
    __slots__ = ("kind", "name", "func")

    def __init__(self, kind, name="", func=None):
        self.kind = kind  # "ns" | "class" | "func" | "block"
        self.name = name
        self.func = func


def build_file_model(path, raw_text, tokens=None):
    model = FileModel(path)
    model.includes = parse_includes(raw_text)
    model.annotations = parse_annotations(raw_text)
    if tokens is None:
        tokens = tokenize(strip_comments_keep_lines(raw_text))
    model.ns_refs = _namespace_refs(tokens)
    _walk(tokens, model)
    return model


def _namespace_refs(tokens):
    """[(line, identifier)] for every `ident ::` pair (layering symbol scan)."""
    out = []
    for i in range(len(tokens) - 1):
        if tokens[i + 1].text == "::" and re.match(r"[a-z_]", tokens[i].text):
            out.append((tokens[i].line, tokens[i].text))
    return out


def _walk(tokens, model):
    scopes = []
    anchor = 0  # start of the current statement at the current scope
    i = 0
    n = len(tokens)
    current_func = None
    func_depth = 0  # block depth inside current function body

    def in_function():
        return current_func is not None

    while i < n:
        t = tokens[i].text
        if t == "{":
            if in_function():
                func_depth += 1
                scopes.append(_Scope("block"))
                anchor = i + 1
                i += 1
                continue
            sig = tokens[anchor:i]
            sig_texts = [tk.text for tk in sig]
            kind = "block"
            name = ""
            func = None
            if "namespace" in sig_texts and "=" not in sig_texts:
                kind = "ns"
                idx = sig_texts.index("namespace")
                name = "".join(s for s in sig_texts[idx + 1:] if s not in ("{",))
            elif ("enum" in sig_texts):
                kind = "block"
            elif ("class" in sig_texts or "struct" in sig_texts or
                  "union" in sig_texts) and ")" != (sig_texts[-1] if sig_texts else ""):
                kind = "class"
                for key in ("class", "struct", "union"):
                    if key in sig_texts:
                        idx = sig_texts.index(key)
                        break
                for s in sig_texts[idx + 1:]:
                    if re.match(r"[A-Za-z_]", s) and s not in KEYWORDS:
                        name = s
                        break
            elif "=" in sig_texts and "operator" not in sig_texts:
                kind = "block"  # aggregate initializer
            else:
                fs = _function_signature(tokens, anchor, i)
                if fs is not None:
                    fname, chain, params = fs
                    kind = "func"
                    ns_parts = [s.name for s in scopes if s.kind == "ns"]
                    cls_parts = [s.name for s in scopes if s.kind == "class"]
                    cls_parts += chain
                    qual = "::".join(
                        [p for p in ns_parts if p] + cls_parts + [fname])
                    func = Function(fname, qual,
                                    "::".join([p for p in ns_parts if p] +
                                              cls_parts),
                                    tokens[i].line, model.path)
                    func.params = params
                    func.path = model.path
            scopes.append(_Scope(kind, name, func))
            if func is not None:
                current_func = func
                func_depth = 1
            anchor = i + 1
            i += 1
            continue
        if t == "}":
            if scopes:
                closed = scopes.pop()
                if in_function():
                    func_depth -= 1
                    if closed.kind == "func" or func_depth == 0:
                        current_func.end_line = tokens[i].line
                        model.functions.append(current_func)
                        current_func = None
                        func_depth = 0
                    else:
                        # scope close: guards acquired deeper than this die
                        current_func.events.append(Event(
                            "scope_close", tokens[i].line, func_depth, None))
            anchor = i + 1
            i += 1
            continue
        if t == ";" and not in_function():
            anchor = i + 1
            i += 1
            continue
        if in_function():
            i = _body_statement(tokens, i, current_func, func_depth)
            continue
        i += 1

    if current_func is not None:  # truncated file; keep what we have
        current_func.end_line = tokens[-1].line if tokens else 0
        model.functions.append(current_func)


def _collect_template_args(tokens, i):
    """tokens[i] == '<': return index just past the matching '>'."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t in (";", "{"):
            return i  # not a template after all
        i += 1
    return i


def _expr_until(tokens, i, stop):
    """Join token texts from i until a top-level token in `stop`; returns
    (text, next_index)."""
    parts = []
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if depth == 0 and t in stop:
            return "".join(parts), i
        if t in "([{":
            depth += 1
        elif t in ")]}":
            depth -= 1
            if depth < 0:
                return "".join(parts), i
        parts.append(t)
        i += 1
    return "".join(parts), i


def _body_statement(tokens, i, func, depth):
    """Process one token inside a function body; returns the next index."""
    t = tokens[i].text
    line = tokens[i].line
    nxt = tokens[i + 1].text if i + 1 < len(tokens) else ""

    # --- lock guards: std::lock_guard<...> name(args) ----------------------
    if (t == "std" and nxt == "::" and i + 2 < len(tokens)
            and tokens[i + 2].text in GUARD_TEMPLATES):
        j = i + 3
        if j < len(tokens) and tokens[j].text == "<":
            j = _collect_template_args(tokens, j)
        if j < len(tokens) and re.match(r"[A-Za-z_]", tokens[j].text):
            guard_var = tokens[j].text
            j += 1
            if j < len(tokens) and tokens[j].text in ("(", "{"):
                close = ")" if tokens[j].text == "(" else "}"
                args = []
                k = j + 1
                while k < len(tokens) and tokens[k].text != close:
                    expr, k = _expr_until(tokens, k, {",", close})
                    if expr:
                        args.append(expr)
                    if k < len(tokens) and tokens[k].text == ",":
                        k += 1
                simultaneous = (tokens[i + 2].text == "scoped_lock"
                                and len(args) > 1)
                # adopting an already-held mutex, not an acquisition
                args = [a for a in args if a not in
                        ("std::adopt_lock", "std::defer_lock")]
                if args:
                    func.events.append(Event(
                        "acquire", line, depth,
                        (tuple(args), guard_var, simultaneous)))
                return k + 1
        return i + 3

    # --- local declarations -------------------------------------------------
    stmt_start = (i == 0 or tokens[i - 1].text in ("{", "}", ";"))
    if stmt_start and re.match(r"[A-Za-z_]", t):
        decl = _try_local_decl(tokens, i, func)
        if decl is not None:
            return decl

    # --- allocation primitives ---------------------------------------------
    if t == "new":
        prev = tokens[i - 1].text if i > 0 else ""
        if prev != "operator":
            func.events.append(Event("alloc", line, depth, ("new", "new")))
        return i + 1
    if t in ALLOC_FUNCTIONS and nxt == "(":
        func.events.append(Event("alloc", line, depth, ("malloc", t)))
    if t in SMART_MAKERS:
        func.events.append(Event("alloc", line, depth, ("make-smart", t)))
        return i + 1
    if t == "std" and nxt == "::" and i + 2 < len(tokens):
        t2 = tokens[i + 2].text
        if t2 == "string" and i + 3 < len(tokens):
            t3 = tokens[i + 3].text
            if t3 in ("(", "{"):
                func.events.append(Event("alloc", line, depth,
                                         ("std-string", "std::string(...)")))
        if t2 == "to_string":
            func.events.append(Event("alloc", line, depth,
                                     ("std-string", "std::to_string")))
    if (t == '""' and nxt == "+") or (t == "+" and nxt == '""'):
        func.events.append(Event("alloc", line, depth,
                                 ("string-concat", "literal +")))

    # --- member/method calls and growth ------------------------------------
    if t in (".", "->") and i + 2 < len(tokens) and \
            re.match(r"[A-Za-z_]", nxt) and tokens[i + 2].text == "(":
        method = nxt
        if method in GROWTH_METHODS:
            base = _receiver_base(tokens, i)
            func.events.append(Event("alloc", line, depth,
                                     ("growth", f"{base}.{method}" if base
                                      else method)))
        if method not in KEYWORDS:
            func.events.append(Event("call", line, depth, (method, True)))
        return i + 2

    # --- plain / qualified calls -------------------------------------------
    if re.match(r"[A-Za-z_]", t) and t not in KEYWORDS and nxt == "(":
        prev = tokens[i - 1].text if i > 0 else ""
        if prev not in (".", "->"):
            qual = _qualified_prefix(tokens, i)
            func.events.append(Event("call", line, depth, (qual, False)))
    return i + 1


def _receiver_base(tokens, dot_i):
    """Base identifier of a member chain ending at tokens[dot_i] in
    {'.', '->'}: for `a.b->c.push_back`, returns 'a'."""
    j = dot_i
    base = None
    while j > 0:
        if tokens[j].text in (".", "->"):
            j -= 1
            continue
        if tokens[j].text in (")", "]"):
            # method()-chained or indexed receiver: give up on a name
            return None
        if re.match(r"[A-Za-z_]", tokens[j].text):
            base = tokens[j].text
            if j > 0 and tokens[j - 1].text in (".", "->"):
                j -= 1
                continue
            if j > 1 and tokens[j - 1].text == "::":
                j -= 2
                continue
            return base if base not in ("this",) else None
        return base
    return base


def _qualified_prefix(tokens, i):
    """For a call at tokens[i], include any `A::B::` prefix."""
    parts = [tokens[i].text]
    j = i - 1
    while j > 0 and tokens[j].text == "::" and re.match(
            r"[A-Za-z_]", tokens[j - 1].text):
        parts.insert(0, tokens[j - 1].text)
        j -= 2
    return "::".join(parts)


def _try_local_decl(tokens, i, func):
    """Detect `Type[::Type...][<...>] [&*]* name (;|=|(|{)` at statement
    start; records the variable and returns the index of the name token + 1,
    or None if this is not a declaration."""
    j = i
    persistent = False
    n = len(tokens)
    while j < n and tokens[j].text in ("static", "thread_local", "const",
                                       "constexpr", "mutable"):
        if tokens[j].text in ("static", "thread_local"):
            persistent = True
        j += 1
    # type chain
    chain_len = 0
    type_head = None
    while j < n and re.match(r"[A-Za-z_]", tokens[j].text):
        if tokens[j].text in KEYWORDS and tokens[j].text not in (
                "auto", "void", "bool", "char", "short", "int", "long",
                "float", "double", "unsigned", "signed"):
            return None
        if type_head is None:
            type_head = tokens[j].text
        chain_len += 1
        j += 1
        if j < n and tokens[j].text == "<":
            j = _collect_template_args(tokens, j)
        if j < n and tokens[j].text == "::":
            j += 1
            continue
        break
    if chain_len == 0:
        return None
    while j < n and tokens[j].text in ("&", "*", "&&", "const"):
        j += 1
    if not (j < n and re.match(r"[A-Za-z_]", tokens[j].text)
            and tokens[j].text not in KEYWORDS):
        return None
    name_tok = tokens[j]
    after = tokens[j + 1].text if j + 1 < n else ""
    if after not in (";", "=", "(", "{", ","):
        return None
    if chain_len == 0 or (chain_len == 1 and after in ("(",) and
                          type_head == name_tok.text):
        return None
    # `x = y;` has no type chain (chain_len would be 1 and name `=`-adjacent
    # only when two identifiers precede the '='), `call(args)` has one
    # identifier then '(' — require a real type-then-name shape:
    if chain_len == 1 and type_head is not None and after == "(" and \
            type_head not in ("auto",) and "<" not in [t.text for t in
                                                       tokens[i:j]]:
        # Could be `name(args)` call misparse only when there was no
        # separate type token; here we *do* have type+name, keep it.
        pass
    if persistent:
        func.persistent_locals.add(name_tok.text)
    else:
        func.locals.add(name_tok.text)
    return j + 1
