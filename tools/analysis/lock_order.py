"""Lock-order analysis: build the global mutex-acquisition-order graph and
fail on cycles.

Per function, the builtin model yields `acquire` events (RAII guards, with
the guard's scope) and `ann_acquire`/`ann_release` annotation events for
non-RAII protocols (the Tracer seqlock slot claim). Walking the event
stream with scope-aware held-set tracking gives intra-function edges
"A held while B acquired". A fixpoint over a *narrowly* resolved call graph
(same-class methods, globally-unique names, same-namespace free functions —
never a fuzzy union, which would fabricate cycles) adds interprocedural
edges: a call made while holding A, into a callee that (transitively)
acquires B, is an A→B edge.

Lock identity: the canonical id is `<EnclosingClass>::<expr>` with `this->`
stripped, so `mutex_` taken in two methods of one class is one lock, while
the same member name in two classes stays two. A cycle is reported with
the two acquisition chains that close it.

Self-acquisition (acquiring a lock already held) is reported too — with
std::mutex that is a deadlock, not a cycle.
"""

from __future__ import annotations

from findings import Finding, allow_reasons

CHECK = "lock-order"


def canonical_lock(expr, cls):
    expr = expr.replace("this->", "").replace("this.", "")
    expr = expr.lstrip("&*")
    if cls and "::" not in expr:
        return f"{cls}::{expr}"
    return expr


class _Edge:
    __slots__ = ("src", "dst", "evidence")

    def __init__(self, src, dst, evidence):
        self.src = src
        self.dst = dst
        self.evidence = evidence  # "func (file:line): ..."


def _function_facts(models):
    """Per function: direct lock acquisitions, call sites with held sets,
    intra-function edges, and self-acquisition findings."""
    facts = []
    for model in models:
        waived = allow_reasons(model, CHECK)
        for func in model.functions:
            anns = [
                (line, verb, arg)
                for line, pairs in model.annotations.items()
                if func.start_line <= line <= func.end_line
                for verb, arg in pairs if verb in ("acquire", "release")
            ]
            stream = sorted(
                [(e.line, 0, e) for e in func.events] +
                [(line, 1, (verb, arg)) for line, verb, arg in anns],
                key=lambda item: (item[0], item[1]))

            held = []          # [(lock_id, depth, line)]
            edges = []
            acquires = set()
            calls = []         # [(callee, is_method, frozenset(held), line)]
            self_findings = []

            def on_acquire(lock_ids, depth, line, simultaneous):
                for lock in lock_ids:
                    for prev, _, _ in held:
                        if prev == lock:
                            if line not in waived:
                                self_findings.append(Finding(
                                    CHECK, model.path, line,
                                    f"{func.qualname} re-acquires {lock} "
                                    f"already held (self-deadlock)"))
                            continue
                        edges.append(_Edge(
                            prev, lock,
                            f"{func.qualname} ({model.path}:{line}) "
                            f"acquires {lock} while holding {prev}"))
                    if not simultaneous:
                        # sequential: later args also order against earlier
                        pass
                for lock in lock_ids:
                    acquires.add(lock)
                    held.append((lock, depth, line))

            for line, _, item in stream:
                if isinstance(item, tuple):  # annotation
                    verb, arg = item
                    lock = canonical_lock(arg.split()[0], func.cls) \
                        if arg else ""
                    if not lock:
                        continue
                    if verb == "acquire":
                        on_acquire([lock], 1, line, simultaneous=False)
                    else:
                        for k in range(len(held) - 1, -1, -1):
                            if held[k][0] == lock:
                                held.pop(k)
                                break
                    continue
                e = item
                if e.kind == "scope_close":
                    held[:] = [h for h in held if h[1] <= e.depth]
                elif e.kind == "acquire":
                    exprs, _guard, simultaneous = e.payload
                    lock_ids = [canonical_lock(x, func.cls) for x in exprs]
                    if simultaneous:
                        # std::scoped_lock(a, b): deadlock-free algorithm,
                        # no order between a and b — but both order after
                        # anything already held.
                        for prev, _, _ in held:
                            for lock in lock_ids:
                                edges.append(_Edge(
                                    prev, lock,
                                    f"{func.qualname} ({model.path}:{e.line})"
                                    f" scoped_lock {lock} while holding "
                                    f"{prev}"))
                        for lock in lock_ids:
                            acquires.add(lock)
                            held.append((lock, e.depth, e.line))
                    else:
                        on_acquire(lock_ids, e.depth, e.line,
                                   simultaneous=False)
                elif e.kind == "call":
                    callee, is_method = e.payload
                    if held:
                        calls.append((callee, is_method,
                                      tuple(h[0] for h in held), e.line))

            facts.append({
                "func": func, "model": model, "edges": edges,
                "acquires": acquires, "calls": calls,
                "self_findings": self_findings,
            })
    return facts


def _resolve(callee, is_method, caller, by_name):
    """Narrow call resolution; returns a list of candidate Functions
    (empty = unresolved, deliberately not a union guess)."""
    name = callee.split("::")[-1]
    cands = by_name.get(name, [])
    if not cands:
        return []
    if is_method:
        same_cls = [f for f in cands if f.cls and f.cls == caller.cls]
        if same_cls:
            return same_cls
        return cands if len(cands) == 1 else []
    if "::" in callee:
        suffix = callee
        matches = [f for f in cands if f.qualname.endswith(suffix)]
        if matches:
            return matches
    if len(cands) == 1:
        return cands
    caller_ns = caller.qualname.rsplit("::", 1)[0] if "::" in \
        caller.qualname else ""
    same_ns = [f for f in cands
               if f.qualname.rsplit("::", 1)[0] == caller_ns and not f.cls]
    if len(same_ns) == 1:
        return same_ns
    return []


def _transitive_acquires(facts, by_name):
    """Fixpoint: lock set each function may acquire, including via calls."""
    trans = {id(f["func"]): set(f["acquires"]) for f in facts}
    fact_by_func = {id(f["func"]): f for f in facts}
    changed = True
    while changed:
        changed = False
        for f in facts:
            fid = id(f["func"])
            for callee, is_method, _held, _line in f["calls"]:
                for target in _resolve(callee, is_method, f["func"], by_name):
                    extra = trans.get(id(target), set()) - trans[fid]
                    if extra:
                        trans[fid] |= extra
                        changed = True
        # also propagate for functions whose calls had no held locks —
        # they still contribute their own acquires upward
        for f in facts:
            fid = id(f["func"])
            for ev in f["func"].events:
                if ev.kind != "call":
                    continue
                callee, is_method = ev.payload
                for target in _resolve(callee, is_method, f["func"], by_name):
                    extra = trans.get(id(target), set()) - trans[fid]
                    if extra:
                        trans[fid] |= extra
                        changed = True
    return trans, fact_by_func


def analyze(models):
    """-> [Finding]. Cycle findings carry both closing chains."""
    facts = _function_facts(models)
    by_name = {}
    for f in facts:
        by_name.setdefault(f["func"].name, []).append(f["func"])

    trans, _ = _transitive_acquires(facts, by_name)

    edges = []
    findings = []
    for f in facts:
        findings.extend(f["self_findings"])
        edges.extend(f["edges"])
        for callee, is_method, held, line in f["calls"]:
            for target in _resolve(callee, is_method, f["func"], by_name):
                for lock in trans.get(id(target), ()):
                    for prev in held:
                        if prev == lock:
                            continue  # re-entry via call: separate concern
                        edges.append(_Edge(
                            prev, lock,
                            f"{f['func'].qualname} "
                            f"({f['model'].path}:{line}) calls "
                            f"{target.qualname} which acquires {lock} "
                            f"while holding {prev}"))

    # Cycle detection over the order graph.
    adj = {}
    for e in edges:
        adj.setdefault(e.src, {}).setdefault(e.dst, e)
    reported = set()
    for e in edges:
        # path from e.dst back to e.src?
        path = _find_path(adj, e.dst, e.src)
        if path is None:
            continue
        cycle_nodes = frozenset([e.src] + path)
        if cycle_nodes in reported:
            continue
        reported.add(cycle_nodes)
        chain_back = _path_evidence(adj, path)  # e.dst .. e.src evidence
        findings.append(Finding(
            CHECK, "", 0,
            "lock-order cycle between "
            + " and ".join(sorted(cycle_nodes)) + ":\n"
            + "    forward:  " + e.evidence + "\n"
            + "    closing:  " + "\n              ".join(chain_back)))
    return findings


def _find_path(adj, src, dst):
    """Node path src..dst (inclusive) or None."""
    if src == dst:
        return [src]
    frontier = [src]
    parent = {src: None}
    while frontier:
        node = frontier.pop()
        for nxt in adj.get(node, {}):
            if nxt in parent:
                continue
            parent[nxt] = node
            if nxt == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(parent[path[-1]])
                return list(reversed(path))
            frontier.append(nxt)
    return None


def _path_evidence(adj, path):
    out = []
    for a, b in zip(path, path[1:]):
        e = adj.get(a, {}).get(b)
        if e is not None:
            out.append(e.evidence)
    return out or ["(no edge evidence)"]


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

_SEEDED_BAD = """\
namespace demo {
struct Pair {
  void ab() {
    std::lock_guard<std::mutex> la(a_);
    std::lock_guard<std::mutex> lb(b_);
  }
  void ba() {
    std::lock_guard<std::mutex> lb(b_);
    std::lock_guard<std::mutex> la(a_);
  }
  std::mutex a_;  // guards x
  std::mutex b_;  // guards y
};
}  // namespace demo
"""

_SEEDED_OK = """\
namespace demo {
struct Pair {
  void ab() {
    std::lock_guard<std::mutex> la(a_);
    std::lock_guard<std::mutex> lb(b_);
  }
  void also_ab() {
    {
      std::lock_guard<std::mutex> la(a_);
    }
    std::lock_guard<std::mutex> lb(b_);
    helper();
  }
  void helper() {}
  std::mutex a_;  // guards x
  std::mutex b_;  // guards y
};
}  // namespace demo
"""

_SEEDED_INTERPROC = """\
namespace demo {
struct Graph {
  void outer() {
    std::lock_guard<std::mutex> l(a_);
    inner();
  }
  void inner() {
    std::lock_guard<std::mutex> l(b_);
  }
  void reversed() {
    std::lock_guard<std::mutex> l(b_);
    std::lock_guard<std::mutex> l2(a_);
  }
  std::mutex a_;  // guards x
  std::mutex b_;  // guards y
};
}  // namespace demo
"""


def self_test():
    """-> (ok, messages). Seeded reversed pair must produce a cycle;
    a clean ordering must not; an interprocedural reversal must too."""
    import cpp_model
    msgs = []
    ok = True

    bad = analyze([cpp_model.build_file_model("seed_bad.cpp", _SEEDED_BAD)])
    if any("cycle" in f.message for f in bad):
        msgs.append("seeded reversed lock pair detected: OK")
    else:
        ok = False
        msgs.append("FAIL: seeded reversed lock pair NOT detected")

    good = analyze([cpp_model.build_file_model("seed_ok.cpp", _SEEDED_OK)])
    if not good:
        msgs.append("clean ordering produces no findings: OK")
    else:
        ok = False
        msgs.append("FAIL: clean ordering produced findings: "
                    + "; ".join(f.message for f in good))

    inter = analyze(
        [cpp_model.build_file_model("seed_inter.cpp", _SEEDED_INTERPROC)])
    if any("cycle" in f.message for f in inter):
        msgs.append("interprocedural reversed pair detected: OK")
    else:
        ok = False
        msgs.append("FAIL: interprocedural reversed pair NOT detected")
    return ok, msgs
