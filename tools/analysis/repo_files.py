"""Shared repository file-walk for the NetPU-M analysis tooling.

One canonical definition of "the source tree" so tools/lint.py and the
netpu-analyzer checks cannot drift apart on which files they cover.
"""

from __future__ import annotations

import os

# Directories holding first-party C++ the correctness tooling scans.
SRC_DIRS = ("src", "tools", "bench")
CPP_EXTS = {".cpp", ".hpp", ".h"}
HEADER_EXTS = {".hpp", ".h"}


def find_files(root, subdirs=SRC_DIRS, exts=CPP_EXTS):
    """All files under root/<subdir> with one of the extensions, sorted."""
    out = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if os.path.splitext(name)[1] in exts:
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


def src_layer(root, path):
    """The src/ subsystem a file belongs to ('core', 'serve', ...) or None."""
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    parts = rel.split(os.sep)
    if len(parts) >= 2 and parts[0] == "src":
        return parts[1]
    return None
