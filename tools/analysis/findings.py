"""Finding record + annotation waiver helpers shared by the three checks."""

from __future__ import annotations


class Finding:
    __slots__ = ("check", "path", "line", "message")

    def __init__(self, check, path, line, message):
        self.check = check
        self.path = path
        self.line = line
        self.message = message

    def render(self, root=None):
        path = self.path
        if root and path.startswith(root):
            path = path[len(root):].lstrip("/")
        return f"{path}:{self.line}: [{self.check}] {self.message}"


def allow_reasons(model, category):
    """line -> reason for `// analyzer:allow <category> -- <reason>`
    annotations in a file model. A waiver covers its own line and the next
    line (so it can sit above the flagged statement)."""
    out = {}
    for line, anns in model.annotations.items():
        for verb, arg in anns:
            if verb != "allow":
                continue
            parts = arg.split("--", 1)
            cat = parts[0].strip()
            reason = parts[1].strip() if len(parts) > 1 else ""
            if cat == category:
                if not reason:
                    # A waiver without a justification is itself a finding;
                    # callers treat reason None as malformed.
                    out[line] = None
                    out[line + 1] = None
                else:
                    out.setdefault(line, reason)
                    out.setdefault(line + 1, reason)
    return out
