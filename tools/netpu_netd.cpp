// netpu-netd: the network front door daemon. Hosts the serving stack
// (request queue -> dynamic micro-batcher -> model registry -> engine)
// behind a TCP listener speaking the NPWF wire protocol (src/net/wire.hpp).
//
//   netpu-netd [--models TFC-w1a1,TFC-w2a2] [--host H] [--port P] [options]
//
// Models are generated from the zoo deterministically: the same --models
// list and --seed on a remote client (netpu-serve --remote) reproduce
// bit-identical weights, which is how CI proves remote == in-process.
//
// Prints "listening on HOST:PORT" (the resolved port for --port 0) once the
// socket is bound, then serves until SIGINT/SIGTERM, then drains: listener
// closes, in-flight requests finish, responses flush, connections close.
//
// Serving policy flags mirror netpu-serve (--batch-size, --max-wait-us,
// --queue-capacity, --resident-cap, --contexts, --devices, --backend,
// --functional). Front-door flags: --workers (bridge threads into the
// serving stack), --max-connections, --pending-cap (shed-load bound),
// --force-poll (exercise the poll(2) backend). --metrics-out writes a
// validated Prometheus snapshot (serving + netpu_net_* families) at
// shutdown.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/prng.hpp"
#include "net/server.hpp"
#include "nn/model_zoo.hpp"
#include "obs/metrics_exporter.hpp"
#include "serve/server.hpp"

using namespace netpu;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

bool parse_variant(const std::string& name, nn::ModelVariant& out) {
  for (const auto& v : nn::paper_variants()) {
    if (v.name() == name) {
      out = v;
      return true;
    }
  }
  return false;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    const auto end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string models_csv = "TFC-w1a1,TFC-w2a2";
  std::uint64_t seed = 11;
  serve::ServerOptions server_options;
  server_options.policy = {8, 1000};
  serve::RegistryOptions registry_options{.resident_cap = 2, .contexts_per_model = 2};
  server_options.dispatch_threads = 2;
  net::NetServerOptions net_options;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--models" && (v = next())) {
      models_csv = v;
    } else if (arg == "--host" && (v = next())) {
      net_options.host = v;
    } else if (arg == "--port" && (v = next())) {
      net_options.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--workers" && (v = next())) {
      net_options.workers = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--max-connections" && (v = next())) {
      net_options.max_connections = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--pending-cap" && (v = next())) {
      net_options.pending_cap = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--force-poll") {
      net_options.force_poll = true;
    } else if (arg == "--batch-size" && (v = next())) {
      server_options.policy.max_batch_size = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--max-wait-us" && (v = next())) {
      server_options.policy.max_wait_us = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--queue-capacity" && (v = next())) {
      server_options.queue_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--resident-cap" && (v = next())) {
      registry_options.resident_cap = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--contexts" && (v = next())) {
      registry_options.contexts_per_model = static_cast<std::size_t>(std::atoll(v));
      server_options.dispatch_threads = registry_options.contexts_per_model;
    } else if (arg == "--devices" && (v = next())) {
      registry_options.devices = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--seed" && (v = next())) {
      seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--metrics-out" && (v = next())) {
      metrics_out = v;
    } else if (arg == "--functional") {
      server_options.run_options.mode = core::RunMode::kFunctional;
    } else if (arg == "--backend" && (v = next())) {
      if (!core::parse_backend(v, server_options.run_options.backend)) {
        std::fprintf(stderr,
                     "--backend takes cycle | fast | fast-with-latency-model\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: netpu-netd [--models CSV] [--host H] [--port P] "
                   "[--workers N] [--max-connections N] [--pending-cap N] "
                   "[--force-poll] [--batch-size B] [--max-wait-us W] "
                   "[--queue-capacity Q] [--resident-cap K] [--contexts N] "
                   "[--devices N] [--seed S] [--metrics-out F] "
                   "[--functional] [--backend B]\n");
      return 2;
    }
  }

  const auto model_names = split_csv(models_csv);
  if (model_names.empty()) {
    std::fprintf(stderr, "no models given\n");
    return 2;
  }
  const auto config = core::NetpuConfig::paper_instance();
  serve::ModelRegistry registry(config, registry_options);
  common::Xoshiro256 rng(seed);
  for (const auto& name : model_names) {
    nn::ModelVariant variant;
    if (!parse_variant(name, variant)) {
      std::fprintf(stderr, "unknown variant '%s'; use e.g. TFC-w1a1, SFC-w2a2\n",
                   name.c_str());
      return 2;
    }
    const auto mlp = nn::make_random_quantized_model(variant, true, rng);
    if (auto s = registry.add_model(name, mlp); !s.ok()) {
      std::fprintf(stderr, "register '%s' failed: %s\n", name.c_str(),
                   s.error().to_string().c_str());
      return 1;
    }
  }

  serve::Server server(registry, server_options);
  server.start();
  net::NetServer net_server(server, net_options);
  if (auto s = net_server.start(); !s.ok()) {
    std::fprintf(stderr, "bind failed: %s\n", s.error().to_string().c_str());
    return 1;
  }

  // Scraped by scripts driving --port 0; keep the format stable.
  std::printf("listening on %s:%u\n", net_options.host.c_str(),
              static_cast<unsigned>(net_server.port()));
  std::printf("netpu-netd: %zu models, %zu workers, pending cap %zu, %s, %s backend\n",
              model_names.size(), net_options.workers, net_options.pending_cap,
              net_options.force_poll ? "poll" : "epoll",
              server_options.run_options.mode == core::RunMode::kFunctional
                  ? "functional"
                  : core::to_string(server_options.run_options.backend));
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("draining...\n");
  std::fflush(stdout);
  // Capture the exposition text before teardown so --metrics-out reflects
  // the served load.
  const std::string metrics_text = net_server.prometheus_text();
  net_server.stop();
  server.stop();

  const auto counters = net_server.counters();
  std::printf(
      "served %llu frames in / %llu out over %llu connections "
      "(%llu ok, %llu error, %llu shed, %llu protocol errors)\n",
      static_cast<unsigned long long>(counters.frames_in),
      static_cast<unsigned long long>(counters.frames_out),
      static_cast<unsigned long long>(counters.connections_accepted),
      static_cast<unsigned long long>(counters.responses_ok),
      static_cast<unsigned long long>(counters.responses_error),
      static_cast<unsigned long long>(counters.shed),
      static_cast<unsigned long long>(counters.protocol_errors));

  if (!metrics_out.empty()) {
    if (auto s = obs::validate_prometheus(metrics_text); !s.ok()) {
      std::fprintf(stderr, "metrics validation failed: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
    FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    std::fwrite(metrics_text.data(), 1, metrics_text.size(), f);
    std::fclose(f);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}
