// netpu-run: simulate a loadable on a NetPU-M instance.
//
//   netpu-run --stream inference.npl [options]
//
// Options:
//   --lpus N / --tnpus N   instance geometry (default 2 x 8)
//   --mt-bits N            Multi-Threshold cap (default 4)
//   --clock MHZ            clock (default 100)
//   --dense                dense-capable instance
//   --overlapped           flow-through weight streaming
//   --functional           skip timing (golden evaluation only)
//   --stats                dump simulation counters
//   --profile              per-layer cycle breakdown
//   --vcd PATH             write an FSM waveform (GTKWave-loadable)
#include <cstdio>
#include <fstream>
#include <string>

#include "core/accelerator.hpp"
#include "loadable/stream_io.hpp"
#include "sim/trace.hpp"

using namespace netpu;

int main(int argc, char** argv) {
  std::string stream_path = "inference.npl";
  core::NetpuConfig config = core::NetpuConfig::paper_instance();
  core::RunOptions options;
  bool dump_stats = false;
  bool profile = false;
  std::string vcd_path;
  sim::Trace trace;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--stream") {
      const char* v = next();
      if (v == nullptr) return 2;
      stream_path = v;
    } else if (arg == "--lpus") {
      const char* v = next();
      if (v == nullptr) return 2;
      config.lpus = std::atoi(v);
    } else if (arg == "--tnpus") {
      const char* v = next();
      if (v == nullptr) return 2;
      config.lpu.tnpus = std::atoi(v);
    } else if (arg == "--mt-bits") {
      const char* v = next();
      if (v == nullptr) return 2;
      config.tnpu.max_mt_bits = std::atoi(v);
    } else if (arg == "--clock") {
      const char* v = next();
      if (v == nullptr) return 2;
      config.clock_mhz = std::atof(v);
    } else if (arg == "--dense") {
      config.tnpu.dense_support = true;
    } else if (arg == "--overlapped") {
      config.overlapped_weight_stream = true;
    } else if (arg == "--functional") {
      options.mode = core::RunMode::kFunctional;
    } else if (arg == "--stats") {
      dump_stats = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--vcd") {
      const char* v = next();
      if (v == nullptr) return 2;
      vcd_path = v;
      trace.enable(true);
      options.trace = &trace;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  if (auto s = config.validate(); !s.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 s.error().to_string().c_str());
    return 2;
  }

  auto stream = loadable::load_stream(stream_path);
  if (!stream.ok()) {
    std::fprintf(stderr, "stream load failed: %s\n",
                 stream.error().to_string().c_str());
    return 1;
  }

  core::Accelerator acc(config);
  auto run = acc.run(stream.value(), options);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.error().to_string().c_str());
    return 1;
  }

  std::printf("predicted class: %zu\n", run.value().predicted);
  std::printf("output values:");
  for (const auto v : run.value().output_values) {
    std::printf(" %lld", static_cast<long long>(v));
  }
  std::printf("\n");
  if (options.mode == core::RunMode::kCycleAccurate) {
    std::printf("latency: %llu cycles = %.2f us @ %.0f MHz\n",
                static_cast<unsigned long long>(run.value().cycles),
                run.value().latency_us(config), config.clock_mhz);
  }
  if (profile) {
    std::printf("--- per-layer profile ---\n");
    std::printf("%6s %10s %10s %10s %10s %10s\n", "layer", "queued",
                "active", "end", "cycles", "wait");
    for (const auto& l : run.value().layers) {
      std::printf("%6zu %10llu %10llu %10llu %10llu %10llu\n", l.layer,
                  static_cast<unsigned long long>(l.queued),
                  static_cast<unsigned long long>(l.active),
                  static_cast<unsigned long long>(l.end),
                  static_cast<unsigned long long>(l.cycles()),
                  static_cast<unsigned long long>(l.wait()));
    }
  }
  if (dump_stats) {
    std::printf("--- simulation counters ---\n%s",
                run.value().stats.to_string().c_str());
  }
  if (!vcd_path.empty()) {
    std::ofstream f(vcd_path);
    f << trace.to_vcd();
    std::printf("wrote %zu trace events to %s\n", trace.events().size(),
                vcd_path.c_str());
  }
  return 0;
}
