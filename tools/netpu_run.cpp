// netpu-run: simulate a loadable on a NetPU-M instance.
//
//   netpu-run --stream inference.npl [options]
//
// Options:
//   --lpus N / --tnpus N   instance geometry (default 2 x 8)
//   --mt-bits N            Multi-Threshold cap (default 4)
//   --clock MHZ            clock (default 100)
//   --dense                dense-capable instance
//   --overlapped           flow-through weight streaming
//   --functional           skip timing (golden evaluation only)
//   --backend B            cycle | fast | fast-with-latency-model
//   --simd K               row-dot kernels: scalar | avx2 | auto (default)
//                          (hardware-path executor; default cycle)
//   --stats                dump simulation counters
//   --profile              per-layer cycle breakdown
//   --vcd PATH             write an FSM waveform (GTKWave-loadable)
//   --batch N              serve N copies of the request through a session
//                          (model loaded once, inputs streamed per request)
//   --threads T            serving channels/threads for --batch (default 1)
//   --devices N            simulated devices the --batch session plans the
//                          model across (layer pipeline / neuron sharding;
//                          default 1)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "engine/accelerator.hpp"
#include "hw/kernels.hpp"
#include "engine/inference_engine.hpp"
#include "engine/session.hpp"
#include "loadable/compiler.hpp"
#include "loadable/stream_io.hpp"
#include "sim/trace.hpp"

using namespace netpu;

int main(int argc, char** argv) {
  std::string stream_path = "inference.npl";
  core::NetpuConfig config = core::NetpuConfig::paper_instance();
  core::RunOptions options;
  bool dump_stats = false;
  bool profile = false;
  std::string vcd_path;
  sim::Trace trace;
  std::size_t batch = 1;
  std::size_t threads = 1;
  std::size_t devices = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--stream") {
      const char* v = next();
      if (v == nullptr) return 2;
      stream_path = v;
    } else if (arg == "--lpus") {
      const char* v = next();
      if (v == nullptr) return 2;
      config.lpus = std::atoi(v);
    } else if (arg == "--tnpus") {
      const char* v = next();
      if (v == nullptr) return 2;
      config.lpu.tnpus = std::atoi(v);
    } else if (arg == "--mt-bits") {
      const char* v = next();
      if (v == nullptr) return 2;
      config.tnpu.max_mt_bits = std::atoi(v);
    } else if (arg == "--clock") {
      const char* v = next();
      if (v == nullptr) return 2;
      config.clock_mhz = std::atof(v);
    } else if (arg == "--dense") {
      config.tnpu.dense_support = true;
    } else if (arg == "--overlapped") {
      config.overlapped_weight_stream = true;
    } else if (arg == "--functional") {
      options.mode = core::RunMode::kFunctional;
    } else if (arg == "--simd") {
      const char* v = next();
      if (v == nullptr || !hw::kernels::select(v)) {
        std::fprintf(stderr, "--simd takes scalar | avx2 | auto\n");
        return 2;
      }
    } else if (arg == "--backend") {
      const char* v = next();
      if (v == nullptr || !core::parse_backend(v, options.backend)) {
        std::fprintf(stderr,
                     "--backend takes cycle | fast | fast-with-latency-model\n");
        return 2;
      }
    } else if (arg == "--stats") {
      dump_stats = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--vcd") {
      const char* v = next();
      if (v == nullptr) return 2;
      vcd_path = v;
      trace.enable(true);
      options.trace = &trace;
    } else if (arg == "--batch") {
      const char* v = next();
      if (v == nullptr) return 2;
      batch = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return 2;
      threads = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--devices") {
      const char* v = next();
      if (v == nullptr) return 2;
      devices = static_cast<std::size_t>(std::atoll(v));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  if (auto s = config.validate(); !s.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 s.error().to_string().c_str());
    return 2;
  }

  auto stream = loadable::load_stream(stream_path);
  if (!stream.ok()) {
    std::fprintf(stderr, "stream load failed: %s\n",
                 stream.error().to_string().c_str());
    return 1;
  }

  core::Accelerator acc(config);
  auto run = acc.run(stream.value(), options);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.error().to_string().c_str());
    return 1;
  }

  std::printf("predicted class: %zu\n", run.value().predicted);
  std::printf("output values:");
  for (const auto v : run.value().output_values) {
    std::printf(" %lld", static_cast<long long>(v));
  }
  std::printf("\n");
  if (options.mode == core::RunMode::kCycleAccurate) {
    if (options.backend == core::Backend::kFast) {
      std::printf("backend: fast (functional; no timing claim)\n");
    } else {
      std::printf("latency: %llu cycles = %.2f us @ %.0f MHz (%s backend%s)\n",
                  static_cast<unsigned long long>(run.value().cycles),
                  run.value().latency_us(config), config.clock_mhz,
                  core::to_string(options.backend),
                  options.backend == core::Backend::kFastLatencyModel
                      ? ", analytical estimate"
                      : "");
    }
  }
  if (profile) {
    std::printf("--- per-layer profile ---\n");
    std::printf("%6s %10s %10s %10s %10s %10s\n", "layer", "queued",
                "active", "end", "cycles", "wait");
    for (const auto& l : run.value().layers) {
      std::printf("%6zu %10llu %10llu %10llu %10llu %10llu\n", l.layer,
                  static_cast<unsigned long long>(l.queued),
                  static_cast<unsigned long long>(l.active),
                  static_cast<unsigned long long>(l.end),
                  static_cast<unsigned long long>(l.cycles()),
                  static_cast<unsigned long long>(l.wait()));
    }
  }
  if (dump_stats) {
    std::printf("--- simulation counters ---\n%s",
                run.value().stats.to_string().c_str());
  }
  if (!vcd_path.empty()) {
    std::ofstream f(vcd_path);
    f << trace.to_vcd();
    std::printf("wrote %zu trace events to %s\n", trace.events().size(),
                vcd_path.c_str());
  }

  if (batch > 1) {
    // Serving mode: split the fused loadable into model + input streams,
    // load the model once into a session (one persistent context per
    // thread), then serve `batch` copies of the input through the engine.
    auto split = loadable::split_stream(stream.value());
    if (!split.ok()) {
      std::fprintf(stderr, "stream split failed: %s\n",
                   split.error().to_string().c_str());
      return 1;
    }
    if (threads == 0) threads = 1;
    if (devices == 0) devices = 1;
    auto session = engine::Session::create(
        config, {.contexts = threads, .devices = devices});
    if (!session.ok()) {
      std::fprintf(stderr, "session create failed: %s\n",
                   session.error().to_string().c_str());
      return 1;
    }
    if (auto s = session.value().load_model(split.value().model); !s.ok()) {
      std::fprintf(stderr, "model load failed: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
    // Decode the request's image from the input stream, then serve `batch`
    // copies of it through the engine.
    const auto first_setting = loadable::LayerSetting::from_layer(
        session.value().model().layers.front());
    auto image = loadable::parse_input(first_setting, split.value().input);
    if (!image.ok()) {
      std::fprintf(stderr, "input decode failed: %s\n",
                   image.error().to_string().c_str());
      return 1;
    }
    std::vector<std::vector<std::uint8_t>> images(batch, image.value());
    engine::InferenceEngine eng(session.value(), threads);
    core::RunOptions serve_options = options;
    serve_options.trace = nullptr;  // tracing is per-context; single-run only
    auto served = eng.run_batch(images, serve_options);
    if (!served.ok()) {
      std::fprintf(stderr, "batch serving failed: %s\n",
                   served.error().to_string().c_str());
      return 1;
    }
    const auto& stats = served.value().stats;
    std::printf("--- batch serving (%zu requests, %zu threads) ---\n", batch,
                eng.threads());
    if (devices > 1) {
      std::printf("%s", session.value().plan().describe().c_str());
    }
    std::printf("model stream: %zu words (loaded once, resident)\n",
                split.value().model.size());
    std::printf("input stream: %zu words per request\n",
                split.value().input.size());
    if (options.mode == core::RunMode::kCycleAccurate) {
      const double warm_cycles = static_cast<double>(stats.total_cycles) /
                                 static_cast<double>(stats.requests);
      std::printf("cold fused run: %llu cycles; warm resident run: %.0f cycles\n",
                  static_cast<unsigned long long>(run.value().cycles),
                  warm_cycles);
      std::printf("mean latency: %.2f us @ %.0f MHz\n", stats.mean_latency_us,
                  config.clock_mhz);
    }
    std::printf("throughput: %.0f images/s (wall %.3f s)\n",
                stats.images_per_second, stats.wall_seconds);
  }
  return 0;
}
