#!/usr/bin/env python3
"""SLO regression gate over BENCH_serving-schema JSON.

Joins the run's rows against the committed baseline on (section, label) and
fails on a regression in any compared row:

  * p99_us        more than --p99-tolerance above baseline (default +15%)
  * images_per_s  more than --throughput-tolerance below baseline (default -10%)
  * capacity_rps  more than --throughput-tolerance below baseline (default -10%)

Improvements always pass; a metric that is zero/absent in the baseline is not
compared (a row gains metrics over time without tripping the gate). Exit
codes: 0 pass, 1 regression, 2 miswired (no rows compared, unreadable input)
-- a gate that silently compared nothing must not look green.

Usage:
  bench_gate.py --baseline BENCH_serving.json --run out.json [--sections capacity,rpc]
  bench_gate.py --self-test
"""

import argparse
import json
import sys


def load_rows(path, sections):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        if sections and row.get("section") not in sections:
            continue
        rows[(row.get("section"), row.get("label"))] = row
    return rows


def compare(base_rows, run_rows, p99_tol, tput_tol):
    """Returns (compared_count, failure message list)."""
    failures = []
    compared = 0
    for key in sorted(base_rows.keys() & run_rows.keys()):
        base, run = base_rows[key], run_rows[key]
        name = "%s/%s" % key
        compared += 1
        b_p99, r_p99 = base.get("p99_us", 0), run.get("p99_us", 0)
        if b_p99 > 0 and r_p99 > b_p99 * (1 + p99_tol):
            failures.append(
                "%s: p99 %.1f us > baseline %.1f us +%d%%"
                % (name, r_p99, b_p99, round(p99_tol * 100))
            )
        for metric in ("images_per_s", "capacity_rps"):
            b, r = base.get(metric, 0), run.get(metric, 0)
            if b > 0 and r < b * (1 - tput_tol):
                failures.append(
                    "%s: %s %.1f < baseline %.1f -%d%%"
                    % (name, metric, r, b, round(tput_tol * 100))
                )
    return compared, failures


def self_test():
    base = {
        ("capacity", "d1"): {"p99_us": 1000.0, "images_per_s": 5000.0,
                             "capacity_rps": 8000.0},
        ("rpc", "loopback"): {"p99_us": 200.0, "images_per_s": 30000.0},
        ("baseline_only", "x"): {"p99_us": 1.0},
    }
    # Identical run passes and compares the intersection only.
    compared, failures = compare(base, dict(base), 0.15, 0.10)
    assert compared == 3 and not failures, failures
    # Improvements pass.
    better = {("capacity", "d1"): {"p99_us": 500.0, "images_per_s": 9000.0,
                                   "capacity_rps": 9000.0}}
    compared, failures = compare(base, better, 0.15, 0.10)
    assert compared == 1 and not failures, failures
    # Within-tolerance noise passes.
    noisy = {("capacity", "d1"): {"p99_us": 1100.0, "images_per_s": 4600.0,
                                  "capacity_rps": 7300.0}}
    compared, failures = compare(base, noisy, 0.15, 0.10)
    assert not failures, failures
    # p99 blowup fails.
    slow = {("capacity", "d1"): {"p99_us": 1200.0, "images_per_s": 5000.0,
                                 "capacity_rps": 8000.0}}
    _, failures = compare(base, slow, 0.15, 0.10)
    assert len(failures) == 1, failures
    # Capacity collapse fails.
    shrunk = {("capacity", "d1"): {"p99_us": 1000.0, "images_per_s": 5000.0,
                                   "capacity_rps": 7000.0}}
    _, failures = compare(base, shrunk, 0.15, 0.10)
    assert len(failures) == 1, failures
    # Zero-baseline metrics are not compared.
    sparse_base = {("capacity", "d1"): {"p99_us": 0, "images_per_s": 0}}
    _, failures = compare(sparse_base, slow, 0.15, 0.10)
    assert not failures, failures
    # Disjoint keys -> nothing compared (callers must exit 2).
    compared, _ = compare(base, {("other", "y"): {"p99_us": 1.0}}, 0.15, 0.10)
    assert compared == 0
    print("bench_gate self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline")
    parser.add_argument("--run")
    parser.add_argument("--sections", help="comma-separated section filter")
    parser.add_argument("--p99-tolerance", type=float, default=0.15)
    parser.add_argument("--throughput-tolerance", type=float, default=0.10)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.run:
        parser.error("--baseline and --run are required (or --self-test)")
    sections = set(args.sections.split(",")) if args.sections else None
    try:
        base_rows = load_rows(args.baseline, sections)
        run_rows = load_rows(args.run, sections)
    except (OSError, ValueError) as e:
        print("bench_gate: cannot load input: %s" % e, file=sys.stderr)
        return 2
    compared, failures = compare(base_rows, run_rows, args.p99_tolerance,
                                 args.throughput_tolerance)
    if compared == 0:
        print("bench_gate: no rows in common between %s and %s%s"
              % (args.baseline, args.run,
                 " (sections: %s)" % args.sections if args.sections else ""),
              file=sys.stderr)
        return 2
    for f in failures:
        print("REGRESSION %s" % f, file=sys.stderr)
    print("bench_gate: %d row(s) compared, %d regression(s)"
          % (compared, len(failures)))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
