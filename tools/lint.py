#!/usr/bin/env python3
"""Project-invariant lint for the NetPU-M repo.

Enforces the handful of repo rules clang-tidy has no checks for. Runs as a
tier-1 ctest (`repo_lint`), so a violation fails the ordinary test run; the
`repo_lint_selftest` entry seeds one violation per rule into a scratch tree
and asserts the lint rejects each, so the lint itself cannot rot silently.

Rules
-----
nodiscard-status     src/common/status.hpp must keep class-level
                     [[nodiscard]] on Status and Result.
status-discard       A call to a function returning common::Status or
                     common::Result must not be a bare discarded statement.
                     (The compiler enforces this too via the class attribute;
                     the lint catches it without a build, e.g. in code that
                     is conditionally compiled out.)
mutex-annotation     Every `std::mutex` declaration carries a lock-annotation
                     comment (same line or the line above) saying what it
                     guards — the word "guard" is the marker.
reinterpret-cast     No reinterpret_cast outside the serialization layers
                     (src/loadable/, src/data/) unless the line carries a
                     `lint:allow reinterpret_cast` waiver with a reason.
pragma-once          Every header under src/ opens with #pragma once (before
                     any non-comment line).

Usage
-----
  tools/lint.py [--root REPO_ROOT]   # lint the tree (default: repo root)
  tools/lint.py --self-test          # prove each rule still fires
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

# Shared with the netpu-analyzer (tools/analysis/): one definition of the
# file walk and the comment stripper so the two gates cannot drift apart on
# what "the source tree" means.
sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "analysis"))
from cpp_model import strip_comments_keep_lines  # noqa: E402
from repo_files import SRC_DIRS, find_files  # noqa: E402

WAIVER = "lint:allow"


# --- rule: nodiscard-status -------------------------------------------------

def check_nodiscard_status(root):
    path = os.path.join(root, "src", "common", "status.hpp")
    if not os.path.isfile(path):
        return []
    text = open(path, encoding="utf-8").read()
    findings = []
    for cls in ("Status", "Result"):
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+" + cls + r"\b", text):
            findings.append(
                (path, 1, "nodiscard-status",
                 f"class {cls} must be declared `class [[nodiscard]] {cls}`"))
    return findings


# --- rule: status-discard ---------------------------------------------------

# Function/method names declared to return common::Status or common::Result.
DECL_RE = re.compile(
    r"(?:^|[\s\]])(?:static\s+)?"
    r"(?:common::)?(?:Status|Result<[^;=]*?>)\s+"
    r"([A-Za-z_]\w*)\s*\(", re.M)

# A bare discarded call statement: optional object expression (no spaces or
# parens — a paren would mean the name is an argument to an outer call, which
# consumes the value) followed by the call, closing `);` at statement end.
def _call_re(name):
    return re.compile(
        r"^\s*(?:[A-Za-z_][\w.\->:\[\]]*(?:\.|->|::))?"
        + re.escape(name) + r"\s*\(")


def collect_status_returning_names(root):
    names = set()
    for path in find_files(root, ("src",), {".hpp", ".h"}):
        text = strip_comments_keep_lines(open(path, encoding="utf-8").read())
        for m in DECL_RE.finditer(text):
            names.add(m.group(1))
    # Names too generic to scan by text alone — they collide with unrelated
    # methods (`condition_variable::wait`, `sim::Fifo::push`, ...). The
    # compiler's class-level [[nodiscard]] still covers the real ones.
    for generic in ("run", "load", "wait", "push", "add", "start"):
        names.discard(generic)
    return names


def logical_statements(text):
    """Yield (line_number, statement) with parens balanced across lines."""
    statements = []
    buf = []
    depth = 0
    start_line = 1
    for lineno, line in enumerate(text.split("\n"), start=1):
        if not buf:
            start_line = lineno
        buf.append(line)
        depth += line.count("(") - line.count(")")
        stripped = line.strip()
        if depth <= 0 and (stripped.endswith(";") or stripped.endswith("{")
                           or stripped.endswith("}") or not stripped):
            statements.append((start_line, "\n".join(buf)))
            buf = []
            depth = 0
    if buf:
        statements.append((start_line, "\n".join(buf)))
    return statements


def check_status_discard(root, names=None):
    if names is None:
        names = collect_status_returning_names(root)
    if not names:
        return []
    call_res = {name: _call_re(name) for name in names}
    findings = []
    for path in find_files(root, SRC_DIRS, {".cpp", ".hpp", ".h"}):
        raw = open(path, encoding="utf-8").read()
        if WAIVER + " status-discard" in raw:
            continue
        text = strip_comments_keep_lines(raw)
        for lineno, stmt in logical_statements(text):
            flat = stmt.strip()
            if not flat.endswith(";"):
                continue
            # Assignments, returns, casts and control flow consume the value.
            if re.match(r"^(return|if|while|for|switch|case|auto|const|else)\b",
                        flat):
                continue
            if "(void)" in flat or "=" in flat.split("(", 1)[0]:
                continue
            for name, call_re in call_res.items():
                m = call_re.match(flat)
                if not m:
                    continue
                # Consuming the result via a member call (e.g. `.ok()`,
                # `.value()`) leaves a suffix after the final `)`.
                tail = flat[flat.rfind(")") + 1:].rstrip(";").strip()
                if tail:
                    continue
                findings.append(
                    (path, lineno, "status-discard",
                     f"result of '{name}(...)' (returns Status/Result) is "
                     f"discarded; check it or cast to (void) with a reason"))
                break
    return findings


# --- rule: mutex-annotation -------------------------------------------------

# Any std mutex flavour, declared with `;`, `{}` or `()` initialization.
MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?std::"
    r"(?:recursive_|timed_|shared_|recursive_timed_|shared_timed_)?mutex"
    r"\s+\w+\s*(?:;|\{\s*\}\s*;|\(\s*\)\s*;)")


def check_mutex_annotation(root):
    findings = []
    for path in find_files(root, ("src",), {".cpp", ".hpp", ".h"}):
        lines = open(path, encoding="utf-8").read().split("\n")
        for idx, line in enumerate(lines):
            if not MUTEX_DECL_RE.match(line):
                continue
            here = line.lower()
            above = lines[idx - 1].lower() if idx > 0 else ""
            if "guard" in here or "guard" in above:
                continue
            findings.append(
                (path, idx + 1, "mutex-annotation",
                 "mutex declaration needs a lock-annotation comment "
                 "(same line or line above) saying what it guards, e.g. "
                 "`// guards foo_, bar_`"))
    return findings


# --- rule: reinterpret-cast -------------------------------------------------

CAST_ALLOWED_PREFIXES = (
    os.path.join("src", "loadable") + os.sep,
    os.path.join("src", "data") + os.sep,
)


def check_reinterpret_cast(root):
    findings = []
    for path in find_files(root, ("src",), {".cpp", ".hpp", ".h"}):
        rel = os.path.relpath(path, root)
        if rel.startswith(CAST_ALLOWED_PREFIXES):
            continue
        lines = open(path, encoding="utf-8").read().split("\n")
        for idx, line in enumerate(lines):
            if "reinterpret_cast" not in line:
                continue
            code = line.split("//", 1)[0]
            if "reinterpret_cast" not in code:
                continue  # only mentioned in a comment
            context = line + (lines[idx - 1] if idx > 0 else "")
            if WAIVER + " reinterpret_cast" in context:
                continue
            findings.append(
                (path, idx + 1, "reinterpret-cast",
                 "reinterpret_cast outside src/loadable/ and src/data/ "
                 "stream I/O; use a typed accessor, or waive with "
                 "`// lint:allow reinterpret_cast — <reason>`"))
    return findings


# --- rule: pragma-once ------------------------------------------------------

def check_pragma_once(root):
    findings = []
    for path in find_files(root, ("src",), {".hpp", ".h"}):
        ok = False
        for line in strip_comments_keep_lines(
                open(path, encoding="utf-8").read()).split("\n"):
            stripped = line.strip()
            if not stripped:
                continue
            ok = stripped == "#pragma once"
            break
        if not ok:
            findings.append(
                (path, 1, "pragma-once",
                 "header must open with #pragma once before any code"))
    return findings


ALL_CHECKS = (
    check_nodiscard_status,
    check_status_discard,
    check_mutex_annotation,
    check_reinterpret_cast,
    check_pragma_once,
)


def run_lint(root):
    findings = []
    for check in ALL_CHECKS:
        findings.extend(check(root))
    for path, lineno, rule, message in findings:
        rel = os.path.relpath(path, root)
        print(f"{rel}:{lineno}: [{rule}] {message}")
    return len(findings)


# --- self-test --------------------------------------------------------------

def _write(root, rel, text):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)


def self_test():
    failures = []

    def expect(label, findings, rule, count=1):
        hits = [f for f in findings if f[2] == rule]
        if len(hits) != count:
            failures.append(
                f"{label}: expected {count} '{rule}' finding(s), got "
                f"{len(hits)}: {hits}")

    with tempfile.TemporaryDirectory() as root:
        # Seed: status.hpp without the class attribute.
        _write(root, "src/common/status.hpp",
               "#pragma once\nclass Status {};\n"
               "template <typename T> class Result {};\n")
        expect("nodiscard seeded", check_nodiscard_status(root),
               "nodiscard-status", 2)

        # Seed: a discarded Status call (and a checked one that must pass).
        _write(root, "src/x/api.hpp",
               "#pragma once\nnamespace n {\n"
               "[[nodiscard]] common::Status frobnicate(int v);\n}\n")
        _write(root, "src/x/use.cpp",
               "#include \"api.hpp\"\n"
               "void good() { if (auto s = n::frobnicate(1); !s.ok()) {} }\n"
               "void also_good() { (void)n::frobnicate(2); }\n"
               "void bad() {\n"
               "  n::frobnicate(3);\n"
               "}\n")
        expect("status-discard seeded", check_status_discard(root),
               "status-discard", 1)

        # Seed: annotated mutexes (pass) against a bare std::mutex, a bare
        # shared_mutex, and a bare brace-initialized mutex (each must fail).
        _write(root, "src/x/locks.hpp",
               "#pragma once\n#include <mutex>\n#include <shared_mutex>\n"
               "class A {\n"
               "  std::mutex good_;  // guards table_\n"
               "  // guards the free list and counters\n"
               "  std::mutex also_good_;\n"
               "  std::shared_mutex rw_good_;  // guards the model map\n"
               "  mutable std::recursive_mutex rec_good_;  // guards log_\n"
               "  int spacer_ = 0;\n"
               "  std::mutex bad_;\n"
               "  std::shared_mutex rw_bad_;\n"
               "  std::mutex brace_bad_{};\n};\n")
        expect("mutex seeded", check_mutex_annotation(root),
               "mutex-annotation", 3)

        # Seed: reinterpret_cast outside the serialization layers, one waived,
        # one inside src/data (allowed).
        _write(root, "src/x/casts.cpp",
               "void f(char* p) {\n"
               "  auto* a = reinterpret_cast<int*>(p);\n"
               "  // lint:allow reinterpret_cast — mmap'd register window\n"
               "  auto* b = reinterpret_cast<int*>(p);\n"
               "  (void)a; (void)b;\n}\n")
        _write(root, "src/data/io.cpp",
               "void g(char* p) { (void)reinterpret_cast<int*>(p); }\n")
        expect("cast seeded", check_reinterpret_cast(root),
               "reinterpret-cast", 1)

        # Seed: header missing #pragma once (a comment prefix must not count
        # as the opening line; the other seeded headers all carry the pragma).
        _write(root, "src/x/no_guard.hpp", "// comment\nint x();\n")
        findings = check_pragma_once(root)
        expect("pragma seeded", findings, "pragma-once", 1)
        hits = sorted(os.path.basename(f[0]) for f in findings)
        if hits and hits != ["no_guard.hpp"]:
            failures.append(f"pragma seeded: expected [no_guard.hpp], got {hits}")

    if failures:
        for f in failures:
            print("SELF-TEST FAIL:", f)
        return 1
    print("lint self-test: all rules fire on seeded violations")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="seed violations and assert every rule fires")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    count = run_lint(root)
    if count:
        print(f"lint: {count} finding(s)")
        sys.exit(1)
    print("lint: clean")
    sys.exit(0)


if __name__ == "__main__":
    main()
