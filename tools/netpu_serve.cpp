// netpu-serve: online multi-model serving demo over the serving front-end
// (request queue -> dynamic micro-batcher -> LRU model registry -> engine).
//
//   netpu-serve [--models TFC-w1a1,TFC-w2a2] [--requests 64] [options]
//
// Load generation:
//   --mode closed|open   closed-loop clients (default) or Poisson open loop
//   --clients C          concurrent closed-loop clients (default 4)
//   --rate R             open-loop arrival rate, requests/s (default 2000)
//   --deadline-us D      per-request deadline (0 = none; open loop only)
//
// Serving policy:
//   --batch-size B       micro-batch cap (default 8)
//   --max-wait-us W      batching window (default 1000)
//   --queue-capacity Q   admission bound (default 256)
//   --resident-cap K     models resident at once (default 2)
//   --contexts N         NetPU contexts per resident model (default 2)
//   --devices N          simulated devices each resident model is planned
//                        across (layer pipeline / neuron sharding; default 1)
//
// Observability:
//   --metrics-out F      write a Prometheus text-format metrics snapshot
//   --trace-out F        record per-request spans, write Chrome trace JSON
//                        (open in chrome://tracing)
//   --record-trace F     record the offered workload (arrival times, model,
//                        deadline, backend, input index) as a netpu-trace v1
//                        file replayable with netpu-loadgen (in-process
//                        modes only)
//
// Remote mode (network front door, see src/net/):
//   --remote H:P         drive a netpu-netd daemon over TCP instead of the
//                        in-process stack; --clients sizes the connection
//                        pool (closed loop only). Models and inputs are
//                        regenerated locally from --models/--seed, so the
//                        daemon must share both for bit-identical results.
//   --predictions-out F  write "index model prediction" lines for completed
//                        requests (both modes) — CI diffs remote vs local.
//
// Misc: --seed S, --functional (golden evaluation, no cycle simulation),
//       --backend cycle|fast|fast-with-latency-model (hardware-path
//       executor; fast skips FIFO ticking but stays bit-identical; in
//       remote mode this is sent as the per-request wire selector),
//       --simd scalar|avx2|auto (row-dot kernel table; auto is default)
//
// Exit status: nonzero when nothing completed, an artifact failed to write,
// or (remote mode) any client saw a transport or protocol error.
//
// Prints the ServerStats table: per-model admitted/rejected/expired counts,
// mean micro-batch size and p50/p95/p99 end-to-end latency, plus per-model
// throughput and registry load/eviction counters.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "data/synthetic_mnist.hpp"
#include "hw/kernels.hpp"
#include "load/trace.hpp"
#include "loadable/compiler.hpp"
#include "net/client.hpp"
#include "nn/model_zoo.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics_exporter.hpp"
#include "serve/server.hpp"

using namespace netpu;

namespace {

bool parse_variant(const std::string& name, nn::ModelVariant& out) {
  for (const auto& v : nn::paper_variants()) {
    if (v.name() == name) {
      out = v;
      return true;
    }
  }
  return false;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    const auto end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// Write "index model prediction" lines for completed requests (-1 entries
// are skipped: rejected/expired requests have no prediction to compare).
bool write_predictions(const std::string& path,
                       const std::vector<std::string>& model_names,
                       const std::vector<std::int64_t>& predictions) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for predictions\n", path.c_str());
    return false;
  }
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] < 0) continue;
    std::fprintf(f, "%zu %s %lld\n", i,
                 model_names[i % model_names.size()].c_str(),
                 static_cast<long long>(predictions[i]));
  }
  std::fclose(f);
  std::printf("predictions written to %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string models_csv = "TFC-w1a1,TFC-w2a2";
  std::size_t requests = 64;
  std::string mode = "closed";
  std::size_t clients = 4;
  double rate = 2000.0;
  std::uint64_t deadline_us = 0;
  serve::ServerOptions server_options;
  server_options.policy = {8, 1000};
  serve::RegistryOptions registry_options{.resident_cap = 2, .contexts_per_model = 2};
  server_options.dispatch_threads = 2;
  std::uint64_t seed = 11;
  std::string metrics_out;
  std::string trace_out;
  std::string record_trace;
  std::string remote;
  std::string predictions_out;
  bool backend_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--models" && (v = next())) {
      models_csv = v;
    } else if (arg == "--requests" && (v = next())) {
      requests = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--mode" && (v = next())) {
      mode = v;
    } else if (arg == "--clients" && (v = next())) {
      clients = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--rate" && (v = next())) {
      rate = std::atof(v);
    } else if (arg == "--deadline-us" && (v = next())) {
      deadline_us = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--batch-size" && (v = next())) {
      server_options.policy.max_batch_size = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--max-wait-us" && (v = next())) {
      server_options.policy.max_wait_us = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--queue-capacity" && (v = next())) {
      server_options.queue_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--resident-cap" && (v = next())) {
      registry_options.resident_cap = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--contexts" && (v = next())) {
      registry_options.contexts_per_model = static_cast<std::size_t>(std::atoll(v));
      server_options.dispatch_threads = registry_options.contexts_per_model;
    } else if (arg == "--devices" && (v = next())) {
      registry_options.devices = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--seed" && (v = next())) {
      seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--remote" && (v = next())) {
      remote = v;
    } else if (arg == "--predictions-out" && (v = next())) {
      predictions_out = v;
    } else if (arg == "--metrics-out" && (v = next())) {
      metrics_out = v;
    } else if (arg == "--trace-out" && (v = next())) {
      trace_out = v;
      server_options.trace = true;
    } else if (arg == "--record-trace" && (v = next())) {
      record_trace = v;
    } else if (arg == "--functional") {
      server_options.run_options.mode = core::RunMode::kFunctional;
    } else if (arg == "--backend" && (v = next())) {
      if (!core::parse_backend(v, server_options.run_options.backend)) {
        std::fprintf(stderr,
                     "--backend takes cycle | fast | fast-with-latency-model\n");
        return 2;
      }
      backend_set = true;
    } else if (arg == "--simd" && (v = next())) {
      if (!hw::kernels::select(v)) {
        std::fprintf(stderr, "--simd takes scalar | avx2 | auto\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: netpu-serve [--models CSV] [--requests N] "
                   "[--mode closed|open] [--clients C] [--rate R] "
                   "[--deadline-us D] [--batch-size B] [--max-wait-us W] "
                   "[--queue-capacity Q] [--resident-cap K] [--contexts N] "
                   "[--devices N] [--metrics-out F] [--trace-out F] "
                   "[--record-trace F] [--seed S] "
                   "[--remote H:P] [--predictions-out F] "
                   "[--functional] [--backend B] [--simd K]\n");
      return 2;
    }
  }
  if (mode != "closed" && mode != "open") {
    std::fprintf(stderr, "--mode must be 'closed' or 'open'\n");
    return 2;
  }
  if (!remote.empty() && mode != "closed") {
    std::fprintf(stderr, "--remote supports closed-loop clients only\n");
    return 2;
  }
  if (!remote.empty() && !record_trace.empty()) {
    std::fprintf(stderr,
                 "--record-trace hooks the in-process server; in remote mode "
                 "record on the daemon side\n");
    return 2;
  }
  if (!remote.empty() && server_options.run_options.mode == core::RunMode::kFunctional) {
    std::fprintf(stderr,
                 "--functional is an in-process mode; start netpu-netd with "
                 "--functional instead\n");
    return 2;
  }

  // Build the model zoo entries into the registry.
  const auto model_names = split_csv(models_csv);
  if (model_names.empty()) {
    std::fprintf(stderr, "no models given\n");
    return 2;
  }
  // --- remote mode: drive a netpu-netd daemon over the wire protocol ------
  if (!remote.empty()) {
    const auto colon = remote.rfind(':');
    if (colon == std::string::npos || colon + 1 >= remote.size()) {
      std::fprintf(stderr, "--remote takes HOST:PORT\n");
      return 2;
    }
    const std::string host = remote.substr(0, colon);
    const int port = std::atoi(remote.c_str() + colon + 1);
    if (port <= 0 || port > 65535) {
      std::fprintf(stderr, "--remote: bad port in '%s'\n", remote.c_str());
      return 2;
    }

    // Regenerate the zoo models the daemon holds (same --models/--seed =>
    // bit-identical weights) — only the input-layer settings are needed
    // here, to pack images into kInputMagic word streams.
    common::Xoshiro256 rng(seed);
    std::vector<loadable::LayerSetting> input_settings;
    input_settings.reserve(model_names.size());
    for (const auto& name : model_names) {
      nn::ModelVariant variant;
      if (!parse_variant(name, variant)) {
        std::fprintf(stderr, "unknown variant '%s'\n", name.c_str());
        return 2;
      }
      const auto mlp = nn::make_random_quantized_model(variant, true, rng);
      input_settings.push_back(loadable::LayerSetting::from_layer(mlp.layers.front()));
    }

    const auto dataset = data::make_synthetic_mnist(requests, seed + 1);
    std::vector<std::vector<Word>> streams(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      auto words = loadable::compile_input(
          input_settings[i % input_settings.size()], dataset.images[i]);
      if (!words.ok()) {
        std::fprintf(stderr, "compile input %zu failed: %s\n", i,
                     words.error().to_string().c_str());
        return 1;
      }
      streams[i] = std::move(words).value();
    }

    net::ClientPoolOptions pool_options;
    pool_options.client.host = host;
    pool_options.client.port = static_cast<std::uint16_t>(port);
    pool_options.connections = clients == 0 ? 1 : clients;
    auto pool = net::ClientPool::connect(pool_options);
    if (!pool.ok()) {
      std::fprintf(stderr, "connect to %s failed: %s\n", remote.c_str(),
                   pool.error().to_string().c_str());
      return 1;
    }

    std::printf("netpu-serve --remote %s: %zu requests over %zu models, "
                "%zu pooled connections\n",
                remote.c_str(), requests, model_names.size(),
                pool.value()->size());

    net::SubmitOptions submit_options;
    submit_options.deadline_us = deadline_us;
    if (backend_set) submit_options.backend = server_options.run_options.backend;

    std::vector<std::int64_t> predictions(requests, -1);
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> completed{0};
    std::atomic<std::size_t> failed{0};
    std::mutex stderr_mutex;  // guards first-failure reporting
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(pool.value()->size());
    for (std::size_t t = 0; t < pool.value()->size(); ++t) {
      threads.emplace_back([&] {
        for (;;) {
          const std::size_t i = cursor.fetch_add(1);
          if (i >= requests) return;
          const auto& model = model_names[i % model_names.size()];
          auto r = pool.value()->infer(model, streams[i], submit_options);
          if (r.ok()) {
            predictions[i] = static_cast<std::int64_t>(r.value().predicted);
            completed.fetch_add(1);
          } else {
            if (failed.fetch_add(1) == 0) {
              std::lock_guard<std::mutex> lock(stderr_mutex);
              std::fprintf(stderr, "request %zu failed: %s\n", i,
                           r.error().to_string().c_str());
            }
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    std::printf("remote: %zu completed, %zu failed, %.1f req/s over %.3f s "
                "(%llu connects across the pool)\n",
                completed.load(), failed.load(),
                wall > 0.0 ? static_cast<double>(completed.load()) / wall : 0.0,
                wall,
                static_cast<unsigned long long>(pool.value()->connects()));
    if (!predictions_out.empty() &&
        !write_predictions(predictions_out, model_names, predictions)) {
      return 1;
    }
    // Any transport or protocol failure is a hard failure for scripts.
    return (completed.load() > 0 && failed.load() == 0) ? 0 : 1;
  }

  const auto config = core::NetpuConfig::paper_instance();
  serve::ModelRegistry registry(config, registry_options);
  common::Xoshiro256 rng(seed);
  for (const auto& name : model_names) {
    nn::ModelVariant variant;
    if (!parse_variant(name, variant)) {
      std::fprintf(stderr, "unknown variant '%s'; use e.g. TFC-w1a1, SFC-w2a2\n",
                   name.c_str());
      return 2;
    }
    const auto mlp = nn::make_random_quantized_model(variant, true, rng);
    if (auto s = registry.add_model(name, mlp); !s.ok()) {
      std::fprintf(stderr, "register '%s' failed: %s\n", name.c_str(),
                   s.error().to_string().c_str());
      return 1;
    }
  }

  const auto dataset = data::make_synthetic_mnist(requests, seed + 1);
  load::TraceRecorder recorder;
  if (!record_trace.empty()) server_options.arrival_sink = &recorder;
  serve::Server server(registry, server_options);
  server.start();

  std::printf(
      "netpu-serve: %zu requests over %zu models (%s loop), "
      "batch<=%zu wait<=%llu us, queue %zu, resident cap %zu, "
      "%zu contexts/model, %zu device(s), %s backend\n\n",
      requests, model_names.size(), mode.c_str(),
      server_options.policy.max_batch_size,
      static_cast<unsigned long long>(server_options.policy.max_wait_us),
      server_options.queue_capacity, registry_options.resident_cap,
      registry_options.contexts_per_model, registry_options.devices,
      server_options.run_options.mode == core::RunMode::kFunctional
          ? "functional"
          : core::to_string(server_options.run_options.backend));

  const auto start = std::chrono::steady_clock::now();
  std::size_t submit_failures = 0;
  // Per-request predictions (distinct slots per thread, so no lock); -1 =
  // the request did not complete.
  std::vector<std::int64_t> predictions(requests, -1);

  if (mode == "closed") {
    // Closed loop: C clients, each submits and waits before the next
    // request — concurrency is bounded by the client count.
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> failures{0};
    std::vector<std::thread> threads;
    const std::size_t c = clients == 0 ? 1 : clients;
    threads.reserve(c);
    for (std::size_t t = 0; t < c; ++t) {
      threads.emplace_back([&] {
        for (;;) {
          const std::size_t i = cursor.fetch_add(1);
          if (i >= requests) return;
          const auto& model = model_names[i % model_names.size()];
          serve::RequestOptions ro;
          ro.deadline_us = deadline_us;
          ro.input_tag = i;
          auto h = server.submit(model, dataset.images[i], ro);
          if (!h.ok()) {
            failures.fetch_add(1);
            continue;
          }
          auto r = h.value().wait();  // outcome lands in ServerStats
          if (r.ok()) predictions[i] = static_cast<std::int64_t>(r.value().predicted);
        }
      });
    }
    for (auto& t : threads) t.join();
    submit_failures = failures.load();
  } else {
    // Open loop: Poisson arrivals at `rate` req/s; requests are submitted
    // without waiting, so queue pressure (and rejections/expiry under a
    // deadline) reflect the arrival process, not client think time.
    common::Xoshiro256 arrivals(seed + 2);
    std::vector<std::pair<std::size_t, serve::RequestHandle>> handles;
    handles.reserve(requests);
    auto next_arrival = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < requests; ++i) {
      const double u = 1.0 - arrivals.next_double();  // (0, 1]
      next_arrival += std::chrono::microseconds(
          static_cast<std::uint64_t>(-std::log(u) / rate * 1e6));
      std::this_thread::sleep_until(next_arrival);
      const auto& model = model_names[i % model_names.size()];
      serve::RequestOptions ro;
      ro.deadline_us = deadline_us;
      ro.input_tag = i;
      auto h = server.submit(model, dataset.images[i], ro);
      if (!h.ok()) {
        ++submit_failures;
        continue;
      }
      handles.emplace_back(i, std::move(h).value());
    }
    for (auto& [i, h] : handles) {
      auto r = h.wait();
      if (r.ok()) predictions[i] = static_cast<std::int64_t>(r.value().predicted);
    }
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  server.stop();

  std::printf("%s\n", server.stats().to_table().c_str());
  const auto totals = server.stats().totals();
  if (totals.counters.completed > 0) {
    std::printf("stage latency (all models, completed requests):\n");
    std::printf("  %-12s %9s %9s %9s %9s\n", "stage", "mean us", "p50 us",
                "p95 us", "p99 us");
    const auto stage_row = [](const char* name,
                              const serve::LatencyHistogram& h) {
      std::printf("  %-12s %9.1f %9.1f %9.1f %9.1f\n", name, h.mean(), h.p50(),
                  h.p95(), h.p99());
    };
    stage_row("queue-wait", totals.queue_wait);
    stage_row("batch-form", totals.batch_form);
    stage_row("execute", totals.execute);
    stage_row("end-to-end", totals.latency);
    std::printf("\n");
  }
  std::printf("per-model throughput:\n");
  for (const auto& snap : server.stats().snapshot()) {
    std::printf("  %-12s %8.1f req/s (%llu completed)\n", snap.model.c_str(),
                wall > 0.0 ? static_cast<double>(snap.counters.completed) / wall
                           : 0.0,
                static_cast<unsigned long long>(snap.counters.completed));
  }
  std::printf("aggregate: %.1f req/s over %.3f s; %zu submit failures\n",
              wall > 0.0 ? static_cast<double>(totals.counters.completed) / wall
                         : 0.0,
              wall, submit_failures);

  const auto counters = registry.counters();
  std::printf(
      "registry: %llu loads, %llu evictions, %llu hits; resident now:",
      static_cast<unsigned long long>(counters.loads),
      static_cast<unsigned long long>(counters.evictions),
      static_cast<unsigned long long>(counters.hits));
  for (const auto& name : registry.resident_models()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  // Observability artifacts: the metrics snapshot and span trace are
  // validated before writing so CI catches exposition regressions here.
  const auto write_file = [](const std::string& path, const std::string& body,
                             const char* what) {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for %s\n", path.c_str(), what);
      return false;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("%s written to %s\n", what, path.c_str());
    return true;
  };
  if (!metrics_out.empty()) {
    const auto text = server.prometheus_text();
    if (auto s = obs::validate_prometheus(text); !s.ok()) {
      std::fprintf(stderr, "metrics validation failed: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
    if (!write_file(metrics_out, text, "metrics")) return 1;
  }
  if (!predictions_out.empty() &&
      !write_predictions(predictions_out, model_names, predictions)) {
    return 1;
  }
  if (!trace_out.empty()) {
    const auto json = server.chrome_trace_json();
    if (auto s = obs::validate_chrome_trace(json); !s.ok()) {
      std::fprintf(stderr, "trace validation failed: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
    if (!write_file(trace_out, json, "trace")) return 1;
    std::printf("  %llu span events recorded (%llu dropped); open in "
                "chrome://tracing\n",
                static_cast<unsigned long long>(server.tracer().recorded()),
                static_cast<unsigned long long>(server.tracer().dropped()));
  }

  if (!record_trace.empty()) {
    if (auto s = load::write_trace(record_trace, recorder.events()); !s.ok()) {
      std::fprintf(stderr, "trace record failed: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
    std::printf("workload trace (%zu arrivals) written to %s; replay with "
                "netpu-loadgen replay\n",
                recorder.size(), record_trace.c_str());
  }

  // A serving demo that completed nothing is a failure, not a quiet exit.
  return totals.counters.completed > 0 ? 0 : 1;
}
