// netpu-info: inspect a model file or loadable — layer table, stream
// section sizes, latency estimate and resource requirements.
//
//   netpu-info --model model.netpum
//   netpu-info --stream inference.npl
#include <cstdio>
#include <string>

#include "core/latency_model.hpp"
#include "loadable/parser.hpp"
#include "loadable/stream_io.hpp"
#include "nn/model_io.hpp"

using namespace netpu;

namespace {

void print_model(const nn::QuantizedMlp& mlp) {
  std::printf("%5s %-7s %-16s %5s %7s %8s %6s %6s\n", "layer", "kind",
              "activation", "fold", "dense", "neurons", "fan-in", "w/a");
  for (std::size_t i = 0; i < mlp.layers.size(); ++i) {
    const auto& l = mlp.layers[i];
    std::printf("%5zu %-7s %-16s %5s %7s %8d %6d  w%da%d\n", i,
                hw::to_string(l.kind), hw::to_string(l.activation),
                l.bn_fold ? "yes" : "no", l.dense ? "yes" : "no", l.neurons,
                l.input_length, l.w_prec.bits, l.in_prec.bits);
  }
  std::printf("total weights: %zu\n", mlp.total_weights());

  const auto config = core::NetpuConfig::paper_instance();
  const auto est = core::estimate_latency(mlp, config);
  std::printf("estimated latency on the paper instance: %llu cycles = %.2f us\n",
              static_cast<unsigned long long>(est.total()),
              config.cycles_to_us(est.total()));
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_path, stream_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--model") {
      const char* v = next();
      if (v == nullptr) return 2;
      model_path = v;
    } else if (arg == "--stream") {
      const char* v = next();
      if (v == nullptr) return 2;
      stream_path = v;
    } else {
      std::fprintf(stderr, "usage: netpu-info --model FILE | --stream FILE\n");
      return 2;
    }
  }

  if (!model_path.empty()) {
    auto model = nn::load_model(model_path);
    if (!model.ok()) {
      std::fprintf(stderr, "model load failed: %s\n",
                   model.error().to_string().c_str());
      return 1;
    }
    std::printf("model file: %s\n", model_path.c_str());
    print_model(model.value());
    return 0;
  }
  if (!stream_path.empty()) {
    auto stream = loadable::load_stream(stream_path);
    if (!stream.ok()) {
      std::fprintf(stderr, "stream load failed: %s\n",
                   stream.error().to_string().c_str());
      return 1;
    }
    auto parsed = loadable::parse(stream.value());
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   parsed.error().to_string().c_str());
      return 1;
    }
    std::printf("loadable: %s (%zu words)\n", stream_path.c_str(),
                stream.value().size());
    std::printf("section breakdown:\n");
    std::uint64_t params = 0, weights = 0;
    for (const auto& s : parsed.value().settings) {
      params += s.param_section_words();
      weights += s.weight_section_words();
    }
    const auto header = 3 + 2 * parsed.value().settings.size();
    std::printf("  header+settings: %zu words\n", header);
    std::printf("  dataset input:   %u words\n",
                parsed.value().settings.front().input_words());
    std::printf("  parameters:      %llu words\n",
                static_cast<unsigned long long>(params));
    std::printf("  weights:         %llu words\n",
                static_cast<unsigned long long>(weights));
    print_model(parsed.value().mlp);
    return 0;
  }
  std::fprintf(stderr, "usage: netpu-info --model FILE | --stream FILE\n");
  return 2;
}
