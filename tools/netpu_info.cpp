// netpu-info: inspect a model file or loadable — layer table, stream
// section sizes, latency estimate and resource requirements.
//
//   netpu-info --model model.netpum
//   netpu-info --stream inference.npl     (fused loadable)
//   netpu-info --stream model.npm         (split model stream)
//   netpu-info --stream input.npi         (split input stream)
//
// --stream dispatches on the leading magic word, so all three PR 1 stream
// kinds (fused, model-only, input-only) get a per-section word breakdown.
#include <cstdio>
#include <span>
#include <string>

#include "core/latency_model.hpp"
#include "loadable/compiler.hpp"
#include "loadable/parser.hpp"
#include "loadable/stream_io.hpp"
#include "nn/model_io.hpp"

using namespace netpu;

namespace {

void print_model(const nn::QuantizedMlp& mlp) {
  std::printf("%5s %-7s %-16s %5s %7s %8s %6s %6s\n", "layer", "kind",
              "activation", "fold", "dense", "neurons", "fan-in", "w/a");
  for (std::size_t i = 0; i < mlp.layers.size(); ++i) {
    const auto& l = mlp.layers[i];
    std::printf("%5zu %-7s %-16s %5s %7s %8d %6d  w%da%d\n", i,
                hw::to_string(l.kind), hw::to_string(l.activation),
                l.bn_fold ? "yes" : "no", l.dense ? "yes" : "no", l.neurons,
                l.input_length, l.w_prec.bits, l.in_prec.bits);
  }
  std::printf("total weights: %zu\n", mlp.total_weights());

  const auto config = core::NetpuConfig::paper_instance();
  const auto est = core::estimate_latency(mlp, config);
  std::printf("estimated latency on the paper instance: %llu cycles = %.2f us\n",
              static_cast<unsigned long long>(est.total()),
              config.cycles_to_us(est.total()));
}

int print_fused(const std::string& path, std::span<const Word> stream) {
  auto parsed = loadable::parse(stream);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", parsed.error().to_string().c_str());
    return 1;
  }
  std::printf("fused loadable: %s (%zu words)\n", path.c_str(), stream.size());
  std::printf("section breakdown:\n");
  std::uint64_t params = 0, weights = 0;
  for (const auto& s : parsed.value().settings) {
    params += s.param_section_words();
    weights += s.weight_section_words();
  }
  const auto header = 3 + 2 * parsed.value().settings.size();
  std::printf("  header+settings: %zu words\n", header);
  std::printf("  dataset input:   %u words\n",
              parsed.value().settings.front().input_words());
  std::printf("  parameters:      %llu words\n",
              static_cast<unsigned long long>(params));
  std::printf("  weights:         %llu words\n",
              static_cast<unsigned long long>(weights));
  print_model(parsed.value().mlp);
  return 0;
}

int print_model_stream(const std::string& path,
                       std::span<const Word> stream) {
  auto parsed = loadable::parse_model(stream);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", parsed.error().to_string().c_str());
    return 1;
  }
  std::printf("model stream: %s (%zu words) — load once, stream inputs\n",
              path.c_str(), stream.size());
  std::printf("section breakdown:\n");
  std::uint64_t params = 0, weights = 0;
  for (const auto& s : parsed.value().settings) {
    params += s.param_section_words();
    weights += s.weight_section_words();
  }
  const auto header = 2 + 2 * parsed.value().settings.size();
  std::printf("  header+settings: %zu words\n", header);
  std::printf("  parameters:      %llu words\n",
              static_cast<unsigned long long>(params));
  std::printf("  weights:         %llu words\n",
              static_cast<unsigned long long>(weights));
  std::printf("  per-request input stream: %llu words\n",
              static_cast<unsigned long long>(
                  loadable::input_size_words(parsed.value().settings.front())));
  print_model(parsed.value().mlp);
  return 0;
}

int print_input_stream(const std::string& path,
                       std::span<const Word> stream) {
  // An input stream alone does not carry the packing precision — decoding
  // the samples needs the companion model stream's input-layer setting. The
  // header and payload word counts are still self-describing.
  if (stream.size() < 2) {
    std::fprintf(stderr, "parse failed: truncated input stream\n");
    return 1;
  }
  std::printf("input stream: %s (%zu words)\n", path.c_str(), stream.size());
  std::printf("section breakdown:\n");
  std::printf("  header:          2 words (magic + image count)\n");
  std::printf("  packed samples:  %zu words\n", stream.size() - 2);
  std::printf("  image count:     %llu\n",
              static_cast<unsigned long long>(stream[1]));
  std::printf(
      "decode the samples against the companion model stream's input-layer "
      "setting (netpu-info --stream model.npm).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_path, stream_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--model") {
      const char* v = next();
      if (v == nullptr) return 2;
      model_path = v;
    } else if (arg == "--stream") {
      const char* v = next();
      if (v == nullptr) return 2;
      stream_path = v;
    } else {
      std::fprintf(stderr, "usage: netpu-info --model FILE | --stream FILE\n");
      return 2;
    }
  }

  if (!model_path.empty()) {
    auto model = nn::load_model(model_path);
    if (!model.ok()) {
      std::fprintf(stderr, "model load failed: %s\n",
                   model.error().to_string().c_str());
      return 1;
    }
    std::printf("model file: %s\n", model_path.c_str());
    print_model(model.value());
    return 0;
  }
  if (!stream_path.empty()) {
    auto stream = loadable::load_stream(stream_path);
    if (!stream.ok()) {
      std::fprintf(stderr, "stream load failed: %s\n",
                   stream.error().to_string().c_str());
      return 1;
    }
    switch (stream.value().front()) {
      case loadable::kMagic:
        return print_fused(stream_path, stream.value());
      case loadable::kModelMagic:
        return print_model_stream(stream_path, stream.value());
      case loadable::kInputMagic:
        return print_input_stream(stream_path, stream.value());
      default:
        std::fprintf(stderr, "unknown stream magic\n");  // unreachable
        return 1;
    }
  }
  std::fprintf(stderr, "usage: netpu-info --model FILE | --stream FILE\n");
  return 2;
}
