// netpu-compile: model file + input image -> loadable word stream.
//
//   netpu-compile --model model.netpum --out inference.npl [options]
//
// Options:
//   --image-index N   pick image N from a fresh synthetic MNIST set (default 0)
//   --image-seed N    synthetic set seed (default 2)
//   --idx-images P    take the image from an IDX file instead
//   --idx-labels P
//   --dense           enable dense multi-channel streaming (Sec. V ext.)
//   --split PREFIX    also write the split halves (PR 1 session-mode
//                     streams) as PREFIX.npm (model) and PREFIX.npi (input)
#include <cstdio>
#include <string>

#include "data/idx.hpp"
#include "data/synthetic_mnist.hpp"
#include "loadable/compiler.hpp"
#include "loadable/stream_io.hpp"
#include "nn/model_io.hpp"

using namespace netpu;

int main(int argc, char** argv) {
  std::string model_path = "model.netpum";
  std::string out_path = "inference.npl";
  std::string idx_images, idx_labels;
  std::string split_prefix;
  std::size_t image_index = 0;
  std::uint64_t image_seed = 2;
  bool dense = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--model") {
      const char* v = next();
      if (v == nullptr) return 2;
      model_path = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return 2;
      out_path = v;
    } else if (arg == "--image-index") {
      const char* v = next();
      if (v == nullptr) return 2;
      image_index = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--image-seed") {
      const char* v = next();
      if (v == nullptr) return 2;
      image_seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--idx-images") {
      const char* v = next();
      if (v == nullptr) return 2;
      idx_images = v;
    } else if (arg == "--idx-labels") {
      const char* v = next();
      if (v == nullptr) return 2;
      idx_labels = v;
    } else if (arg == "--split") {
      const char* v = next();
      if (v == nullptr) return 2;
      split_prefix = v;
    } else if (arg == "--dense") {
      dense = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  auto model = nn::load_model(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "model load failed: %s\n",
                 model.error().to_string().c_str());
    return 1;
  }
  if (dense) {
    if (auto s = nn::enable_dense_stream(model.value()); !s.ok()) {
      std::fprintf(stderr, "dense mode rejected: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
  }

  data::Dataset ds;
  if (!idx_images.empty()) {
    auto loaded = data::load_idx(idx_images, idx_labels);
    if (!loaded.ok()) {
      std::fprintf(stderr, "IDX load failed: %s\n",
                   loaded.error().to_string().c_str());
      return 1;
    }
    ds = std::move(loaded).value();
  } else {
    ds = data::make_synthetic_mnist(image_index + 1, image_seed);
  }
  if (image_index >= ds.size()) {
    std::fprintf(stderr, "image index %zu out of range (%zu images)\n",
                 image_index, ds.size());
    return 1;
  }

  auto stream = loadable::compile(model.value(), ds.images[image_index], {});
  if (!stream.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", stream.error().to_string().c_str());
    return 1;
  }
  if (auto s = loadable::save_stream(stream.value(), out_path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.error().to_string().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu words (%zu bytes), label of packed image: %d\n",
              out_path.c_str(), stream.value().size(),
              stream.value().size() * 8, ds.labels[image_index]);

  if (!split_prefix.empty()) {
    auto halves = loadable::split_stream(stream.value());
    if (!halves.ok()) {
      std::fprintf(stderr, "split failed: %s\n",
                   halves.error().to_string().c_str());
      return 1;
    }
    const std::string model_out = split_prefix + ".npm";
    const std::string input_out = split_prefix + ".npi";
    if (auto s = loadable::save_stream(halves.value().model, model_out); !s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.error().to_string().c_str());
      return 1;
    }
    if (auto s = loadable::save_stream(halves.value().input, input_out); !s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.error().to_string().c_str());
      return 1;
    }
    std::printf("wrote %s: %zu words (model stream)\n", model_out.c_str(),
                halves.value().model.size());
    std::printf("wrote %s: %zu words (input stream)\n", input_out.c_str(),
                halves.value().input.size());
  }
  return 0;
}
