# Single switch for the sanitizer matrix: every CI leg (and local repro)
# configures with -DNETPU_SANITIZE=<mode> instead of hand-rolling
# CMAKE_CXX_FLAGS, so the flag set lives in exactly one place.
#
#   none              (default) no instrumentation
#   address           AddressSanitizer
#   undefined         UndefinedBehaviorSanitizer
#   address,undefined combined asan+ubsan (the historical CI leg)
#   thread            ThreadSanitizer (mutually exclusive with address)
#
# All modes use -fno-sanitize-recover=all so the first report fails the
# process (and therefore the test) instead of scrolling past.

set(NETPU_SANITIZE "none" CACHE STRING
    "Sanitizer instrumentation: none | address | undefined | address,undefined | thread")
set_property(CACHE NETPU_SANITIZE PROPERTY STRINGS
             none address undefined "address,undefined" thread)

if(NOT NETPU_SANITIZE STREQUAL "none" AND NOT NETPU_SANITIZE STREQUAL "")
  set(_netpu_valid_sanitizers "address" "undefined" "address,undefined" "thread")
  if(NOT NETPU_SANITIZE IN_LIST _netpu_valid_sanitizers)
    message(FATAL_ERROR
            "NETPU_SANITIZE='${NETPU_SANITIZE}' is not one of: none, address, "
            "undefined, address,undefined, thread")
  endif()
  set(_netpu_san_flags "-fsanitize=${NETPU_SANITIZE}" "-fno-sanitize-recover=all")
  add_compile_options(${_netpu_san_flags})
  add_link_options(${_netpu_san_flags})
  message(STATUS "NetPU: sanitizer instrumentation enabled (${NETPU_SANITIZE})")
endif()
