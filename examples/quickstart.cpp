// Quickstart: the whole NetPU-M flow in ~60 lines.
//
//  1. Describe a quantized MLP (here: random 2-bit weights/activations).
//  2. Compile it plus one input into a loadable (the data stream that fully
//     configures the accelerator at runtime — no hardware regeneration).
//  3. Run the cycle-accurate simulator and read back prediction + latency.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "engine/accelerator.hpp"
#include "loadable/compiler.hpp"
#include "nn/quantized_mlp.hpp"

int main() {
  using namespace netpu;

  // A 16-input, two-hidden-layer, 4-class quantized MLP. Real flows train a
  // FloatMlp and lower it (see examples/mnist_classifier.cpp); random
  // parameters are enough to tour the API.
  common::Xoshiro256 rng(2024);
  nn::RandomMlpSpec spec;
  spec.input_size = 16;
  spec.hidden = {12, 8};
  spec.outputs = 4;
  spec.weight_bits = 2;
  spec.activation_bits = 2;
  spec.hidden_activation = hw::Activation::kMultiThreshold;
  const nn::QuantizedMlp mlp = nn::random_quantized_mlp(spec, rng);

  // The paper's evaluated instance: 2 LPUs x 8 TNPUs @ 100 MHz.
  core::Accelerator accelerator(core::NetpuConfig::paper_instance());

  // One 8-bit input vector.
  std::vector<std::uint8_t> input(16);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>(16 * i);
  }

  // Compile -> stream -> simulate.
  auto stream =
      loadable::compile(mlp, input, accelerator.config().compile_options());
  if (!stream.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", stream.error().to_string().c_str());
    return 1;
  }
  auto run = accelerator.run(stream.value());
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.error().to_string().c_str());
    return 1;
  }

  std::printf("loadable: %zu words (settings + input + params + weights)\n",
              stream.value().size());
  std::printf("predicted class: %zu\n", run.value().predicted);
  std::printf("latency: %llu cycles = %.2f us @ %.0f MHz\n",
              static_cast<unsigned long long>(run.value().cycles),
              run.value().latency_us(accelerator.config()),
              accelerator.config().clock_mhz);

  // The golden integer model agrees bit-for-bit with the simulation.
  const auto golden = mlp.infer(input);
  std::printf("golden model agrees: %s\n",
              golden.predicted == run.value().predicted &&
                      golden.output_values == run.value().output_values
                  ? "yes"
                  : "NO");

  const auto res = accelerator.resources();
  std::printf("instance resources: %ld LUTs, %ld DSPs, %.1f BRAM36\n", res.luts,
              res.dsps, res.bram36);
  return 0;
}
