// The Recycling Layer Structure (Fig. 2 right): a 20-hidden-layer MLP runs
// on the fixed 2-LPU instance, each LPU executing every other layer. An
// HSD design would need 22 physical layer engines; NetPU-M needs none
// beyond the two it always has.
#include <cstdio>

#include "engine/accelerator.hpp"
#include "core/latency_model.hpp"
#include "nn/quantized_mlp.hpp"
#include "sim/scheduler.hpp"

int main() {
  using namespace netpu;

  common::Xoshiro256 rng(77);
  nn::RandomMlpSpec spec;
  spec.input_size = 64;
  spec.hidden.assign(20, 32);  // 20 hidden layers of 32 neurons
  spec.outputs = 10;
  spec.weight_bits = 2;
  spec.activation_bits = 2;
  const auto mlp = nn::random_quantized_mlp(spec, rng);

  std::vector<std::uint8_t> input(64);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>(4 * i);
  }

  const auto config = core::NetpuConfig::paper_instance();
  core::Accelerator acc(config);
  auto run = acc.run(mlp, input);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.error().to_string().c_str());
    return 1;
  }

  std::printf("22-layer MLP (input + 20 hidden + output) on %d physical LPUs\n",
              config.lpus);
  std::printf("predicted: %zu (golden agrees: %s)\n", run.value().predicted,
              mlp.infer(input).predicted == run.value().predicted ? "yes" : "NO");
  std::printf("latency: %.2f us\n", run.value().latency_us(config));

  const auto breakdown = core::estimate_latency(mlp, config);
  std::printf("\nlatency-model breakdown (cycles):\n");
  std::printf("  header/settings : %llu\n",
              static_cast<unsigned long long>(breakdown.header));
  std::printf("  layer init      : %llu\n",
              static_cast<unsigned long long>(breakdown.layer_init));
  std::printf("  input loads     : %llu\n",
              static_cast<unsigned long long>(breakdown.input_load));
  std::printf("  neuron init     : %llu\n",
              static_cast<unsigned long long>(breakdown.neuron_init));
  std::printf("  weight traffic  : %llu  <- dominant (Sec. V bottleneck)\n",
              static_cast<unsigned long long>(breakdown.weight_traffic));
  std::printf("  drain + emit    : %llu\n",
              static_cast<unsigned long long>(breakdown.drain_emit));
  std::printf("  model total     : %llu vs simulated %llu\n",
              static_cast<unsigned long long>(breakdown.total()),
              static_cast<unsigned long long>(run.value().cycles));

  // Depth scaling: latency grows linearly with depth, resources do not
  // grow at all.
  std::printf("\ndepth sweep (32-neuron hidden layers, w2a2):\n");
  std::printf("%8s %12s %12s\n", "layers", "us", "LUTs");
  for (const int depth : {2, 5, 10, 20, 40}) {
    nn::RandomMlpSpec s2 = spec;
    s2.hidden.assign(static_cast<std::size_t>(depth), 32);
    const auto deep = nn::random_quantized_mlp(s2, rng);
    auto r = acc.run(deep, input);
    if (!r.ok()) {
      std::fprintf(stderr, "depth %d failed: %s\n", depth,
                   r.error().to_string().c_str());
      return 1;
    }
    std::printf("%8d %12.2f %12ld\n", depth, r.value().latency_us(config),
                acc.resources().luts);
  }
  return 0;
}
