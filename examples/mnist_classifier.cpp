// End-to-end classifier: train the TFC topology (binarized, w1a1) on
// synthetic MNIST with quantization-aware training, fold batch norm into
// Sign thresholds (Eq. 3), lower to the integer network, and run inference
// through the host driver on the cycle-accurate accelerator.
//
// Drop real MNIST in by replacing make_synthetic_mnist with
// data::load_idx("train-images-idx3-ubyte", "train-labels-idx1-ubyte").
#include <cstdio>

#include "engine/accelerator.hpp"
#include "data/synthetic_mnist.hpp"
#include "nn/lowering.hpp"
#include "nn/model_zoo.hpp"
#include "nn/trainer.hpp"
#include "serve/driver.hpp"

int main() {
  using namespace netpu;

  std::printf("Generating synthetic MNIST...\n");
  const auto train_ds = data::make_synthetic_mnist(3000, 1);
  const auto test_ds = data::make_synthetic_mnist(500, 2);
  const auto train = train_ds.to_train_samples();
  const auto test = test_ds.to_train_samples();

  std::printf("Training TFC-w1a1 (784-64-64-64-10, Sign activations, QAT)...\n");
  auto model = nn::make_float_model({nn::Topology::kTfc, 1, 1});
  nn::TrainConfig cfg;
  cfg.epochs = 6;
  cfg.qat = true;
  cfg.learning_rate = 0.05f;
  cfg.seed = 7;
  nn::Trainer trainer(model, cfg);
  trainer.initialize_weights();
  trainer.fit(train);
  std::printf("  QAT accuracy (host, fake-quantized): %.1f%%\n",
              100.0 * nn::Trainer::evaluate(model, test, true));

  std::printf("Lowering: BN folded into Sign thresholds (Eq. 3)...\n");
  auto lowered = nn::lower(model, nn::LoweringOptions{});
  if (!lowered.ok()) {
    std::fprintf(stderr, "lowering failed: %s\n",
                 lowered.error().to_string().c_str());
    return 1;
  }

  core::Accelerator acc(core::NetpuConfig::paper_instance());
  serve::Driver driver(acc);

  std::printf("Running %zu test images on the accelerator...\n", test_ds.size());
  auto batch = driver.infer_batch(lowered.value(), test_ds.images, test_ds.labels,
                                  /*timed_samples=*/3);
  if (!batch.ok()) {
    std::fprintf(stderr, "inference failed: %s\n", batch.error().to_string().c_str());
    return 1;
  }
  std::printf("  accelerator accuracy: %.1f%% (%zu/%zu)\n",
              100.0 * batch.value().accuracy(), batch.value().correct,
              batch.value().total);
  std::printf("  measured latency (incl. %.1f us DMA/PS overhead): %.2f us/image\n",
              runtime::DmaModel{}.setup_overhead_us,
              batch.value().mean_measured_us);
  std::printf("  (paper Table VI, TFC-w1a1: 44.64 us)\n");
  return 0;
}
