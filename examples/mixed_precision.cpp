// Mixed precision (Sec. III-B1: "the data precision in different layers can
// also be different"): one network whose layers run at 1, 2, and 4 bits,
// plus runtime model swapping — three different networks stream through the
// SAME accelerator instance back to back, no hardware regeneration.
#include <algorithm>
#include <cstdio>

#include "engine/accelerator.hpp"
#include "nn/quantized_mlp.hpp"

using namespace netpu;

namespace {

// Hand-build a mixed-precision network: 2-bit input codes, a 2-bit MT
// hidden layer, a 4-bit MT hidden layer, an 8-bit output layer.
nn::QuantizedMlp mixed_net(common::Xoshiro256& rng) {
  nn::QuantizedMlp mlp;

  nn::QuantizedLayer in;
  in.kind = hw::LayerKind::kInput;
  in.activation = hw::Activation::kMultiThreshold;
  in.in_prec = {8, false};
  in.out_prec = {2, false};
  in.input_length = in.neurons = 32;
  for (int n = 0; n < 32; ++n) {
    for (const double t : {42.5, 127.5, 212.5}) {
      in.mt_thresholds.push_back(common::Q32x5::from_double(t));
    }
  }
  mlp.layers.push_back(std::move(in));

  const auto hidden = [&rng](int neurons, int fan_in, hw::Precision in_p,
                             hw::Precision w_p, int out_bits) {
    nn::QuantizedLayer l;
    l.kind = hw::LayerKind::kHidden;
    l.activation = hw::Activation::kMultiThreshold;
    l.in_prec = in_p;
    l.w_prec = w_p;
    l.out_prec = {out_bits, false};
    l.input_length = fan_in;
    l.neurons = neurons;
    for (int i = 0; i < neurons * fan_in; ++i) {
      l.weights.push_back(static_cast<std::int8_t>(
          rng.next_int(-(1 << (w_p.bits - 1)), (1 << (w_p.bits - 1)) - 1)));
    }
    const int levels = (1 << out_bits) - 1;
    for (int n = 0; n < neurons; ++n) {
      std::vector<std::int64_t> raws;
      for (int k = 0; k < levels; ++k) {
        raws.push_back(rng.next_int(-fan_in * 32, fan_in * 32));
      }
      std::sort(raws.begin(), raws.end());
      for (const auto r : raws) l.mt_thresholds.emplace_back(r);
    }
    return l;
  };
  // Layer 1: 2-bit activations x 2-bit weights -> 4-bit codes.
  mlp.layers.push_back(hidden(16, 32, {2, false}, {2, true}, 4));
  // Layer 2: 4-bit activations x 3-bit weights -> 2-bit codes.
  mlp.layers.push_back(hidden(12, 16, {4, false}, {3, true}, 2));

  nn::QuantizedLayer out;
  out.kind = hw::LayerKind::kOutput;
  out.activation = hw::Activation::kNone;
  out.in_prec = {2, false};
  out.w_prec = {4, true};
  out.out_prec = {8, true};
  out.input_length = 12;
  out.neurons = 4;
  for (int i = 0; i < 48; ++i) {
    out.weights.push_back(static_cast<std::int8_t>(rng.next_int(-8, 7)));
  }
  for (int n = 0; n < 4; ++n) {
    out.bias.push_back(static_cast<std::int32_t>(rng.next_int(-10, 10)));
  }
  mlp.layers.push_back(std::move(out));
  return mlp;
}

}  // namespace

int main() {
  common::Xoshiro256 rng(31);
  core::Accelerator acc(core::NetpuConfig::paper_instance());

  const auto mixed = mixed_net(rng);
  if (auto s = mixed.validate(); !s.ok()) {
    std::fprintf(stderr, "invalid network: %s\n", s.error().to_string().c_str());
    return 1;
  }
  std::printf("Mixed-precision network on one NetPU-M instance:\n");
  for (std::size_t l = 0; l < mixed.layers.size(); ++l) {
    const auto& layer = mixed.layers[l];
    std::printf("  layer %zu: %-6s  in %d-bit x w %d-bit -> out %d-bit, %d neurons\n",
                l, hw::to_string(layer.kind), layer.in_prec.bits,
                layer.w_prec.bits, layer.out_prec.bits, layer.neurons);
  }

  std::vector<std::uint8_t> input(32);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>(8 * i);
  }
  auto run = acc.run(mixed, input);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.error().to_string().c_str());
    return 1;
  }
  std::printf("predicted %zu in %.2f us; golden agrees: %s\n\n",
              run.value().predicted, run.value().latency_us(acc.config()),
              mixed.infer(input).predicted == run.value().predicted ? "yes" : "NO");

  // Runtime model swapping: stream three different networks through the
  // same instance (the PEM-style generality with HSD-style control).
  std::printf("Swapping models at runtime (same instance, new stream each):\n");
  for (const int bits : {1, 2, 4}) {
    nn::RandomMlpSpec spec;
    spec.input_size = 32;
    spec.hidden = {16, 16};
    spec.outputs = 4;
    spec.weight_bits = bits;
    spec.activation_bits = bits;
    const auto net = nn::random_quantized_mlp(spec, rng);
    auto r = acc.run(net, input);
    if (!r.ok()) {
      std::fprintf(stderr, "  w%da%d failed: %s\n", bits, bits,
                   r.error().to_string().c_str());
      return 1;
    }
    std::printf("  w%da%d: predicted %zu, %.2f us\n", bits, bits,
                r.value().predicted, r.value().latency_us(acc.config()));
  }
  return 0;
}
