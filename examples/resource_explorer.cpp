// Design-space exploration: sweep NetPU-M instance parameters against a
// target workload and print the resource/latency frontier — the fast-
// prototyping use the paper lists in Sec. I-B, powered by the analytic
// latency and resource models (no simulation in the inner loop).
#include <cstdio>

#include "core/latency_model.hpp"
#include "hw/power_model.hpp"
#include "nn/model_zoo.hpp"

int main() {
  using namespace netpu;

  common::Xoshiro256 rng(55);
  const auto workload =
      nn::make_random_quantized_model({nn::Topology::kSfc, 2, 2}, true, rng);
  const auto device = hw::ultra96_v2();

  std::printf("Instance frontier for SFC-w2a2 on %s\n", device.name.c_str());
  std::printf("(analytic models; est. latency within ~10%% of simulation)\n\n");
  std::printf("%5s %6s %7s | %8s %8s %8s | %10s %8s %6s\n", "LPUs", "TNPUs",
              "MT-bits", "LUTs", "DSPs", "BRAM", "est. us", "power W", "fits?");

  for (const int lpus : {1, 2}) {
    for (const int tnpus : {4, 8, 16}) {
      for (const int mt_bits : {2, 4, 8}) {
        core::NetpuConfig config = core::NetpuConfig::paper_instance();
        config.lpus = lpus;
        config.lpu.tnpus = tnpus;
        config.tnpu.max_mt_bits = mt_bits;
        const auto res = config.resources();
        const auto util = hw::utilization(res, device);
        const bool fits = util.luts <= 1.0 && util.dsps <= 1.0 &&
                          util.bram36 <= 1.0;
        const auto est = core::estimate_latency(workload, config);
        hw::PowerParams power{hw::kUltra96StaticWatts, 0.45, config.clock_mhz};
        std::printf("%5d %6d %7d | %8ld %8ld %8.1f | %10.1f %8.2f %6s\n", lpus,
                    tnpus, mt_bits, res.luts, res.dsps, res.bram36,
                    config.cycles_to_us(est.total()),
                    hw::estimate_power_watts(res, power), fits ? "yes" : "NO");
      }
    }
  }

  std::printf("\nThe paper's pick (2 LPUs x 8 TNPUs, MT cap 4) is the largest "
              "configuration that still fits the Ultra96-V2.\n");
  return 0;
}
