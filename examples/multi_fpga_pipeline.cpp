// Sec. I-B application scenario: "Multiple FPGAs pipelined NN inference
// acceleration". A deep model is partitioned across several NetPU-M boards;
// each stage re-streams only its slice, so stages overlap across images.
//
// The partition itself comes from runtime::Partitioner — the same planner
// engine::Session uses for its --devices path — and the staged functional
// check runs through the bit-true fast-executor kernels, so the printed
// classification matches the hardware bit for bit.
#include <cstdio>

#include "nn/quantized_mlp.hpp"
#include "runtime/execution_plan.hpp"
#include "runtime/multi_fpga.hpp"

int main() {
  using namespace netpu;

  common::Xoshiro256 rng(9);
  nn::RandomMlpSpec spec;
  spec.input_size = 256;
  spec.hidden.assign(8, 128);
  spec.outputs = 10;
  spec.weight_bits = 2;
  spec.activation_bits = 2;
  const auto mlp = nn::random_quantized_mlp(spec, rng);

  std::vector<std::uint8_t> input(256);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>(i);
  }

  const auto config = core::NetpuConfig::paper_instance();
  std::printf("10-layer MLP across 1-4 pipelined NetPU-M boards:\n\n");
  std::printf("%8s %14s %18s %10s\n", "boards", "latency (us)", "throughput (img/s)",
              "speedup");
  double base_throughput = 0.0;
  for (const int boards : {1, 2, 3, 4}) {
    runtime::MultiFpgaPipeline pipe(mlp, config, boards);
    const double tput = pipe.throughput_images_per_s();
    if (boards == 1) base_throughput = tput;
    std::printf("%8d %14.1f %18.0f %9.2fx\n", boards,
                pipe.single_image_latency_us(), tput, tput / base_throughput);
  }

  runtime::MultiFpgaPipeline pipe(mlp, config, 3);
  std::printf("\nexecution plan for 3 boards:\n%s", pipe.plan().describe().c_str());
  std::printf("\nfunctional check: staged classification == golden: %s\n",
              pipe.classify(input) == mlp.infer(input).predicted ? "yes" : "NO");
  std::printf("(throughput scales with boards while single-image latency "
              "pays one DMA hop per stage)\n");
  return 0;
}
