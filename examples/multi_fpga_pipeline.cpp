// Sec. I-B application scenario: "Multiple FPGAs pipelined NN inference
// acceleration". A deep model is partitioned across several NetPU-M boards;
// each stage re-streams only its slice, so stages overlap across images.
#include <cstdio>

#include "nn/quantized_mlp.hpp"
#include "runtime/multi_fpga.hpp"

int main() {
  using namespace netpu;

  common::Xoshiro256 rng(9);
  nn::RandomMlpSpec spec;
  spec.input_size = 256;
  spec.hidden.assign(8, 128);
  spec.outputs = 10;
  spec.weight_bits = 2;
  spec.activation_bits = 2;
  const auto mlp = nn::random_quantized_mlp(spec, rng);

  std::vector<std::uint8_t> input(256);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>(i);
  }

  const auto config = core::NetpuConfig::paper_instance();
  std::printf("10-layer MLP across 1-4 pipelined NetPU-M boards:\n\n");
  std::printf("%8s %14s %18s %10s\n", "boards", "latency (us)", "throughput (img/s)",
              "speedup");
  double base_throughput = 0.0;
  for (const int boards : {1, 2, 3, 4}) {
    runtime::MultiFpgaPipeline pipe(mlp, config, boards);
    const double tput = pipe.throughput_images_per_s();
    if (boards == 1) base_throughput = tput;
    std::printf("%8d %14.1f %18.0f %9.2fx\n", boards,
                pipe.single_image_latency_us(), tput, tput / base_throughput);
    if (boards == 3) {
      std::printf("         stage map:");
      for (const auto& st : pipe.stages()) {
        std::printf(" [L%zu-L%zu %.0fus]", st.first_layer, st.last_layer,
                    st.stage_us);
      }
      std::printf("\n");
    }
  }

  runtime::MultiFpgaPipeline pipe(mlp, config, 3);
  std::printf("\nfunctional check: staged classification == golden: %s\n",
              pipe.classify(input) == mlp.infer(input).predicted ? "yes" : "NO");
  std::printf("(throughput scales with boards while single-image latency "
              "pays one DMA hop per stage)\n");
  return 0;
}
